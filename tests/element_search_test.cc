// Freeze/serve equivalence for the element domains: the frozen truss and
// nucleus paths (FreezeTruss/FreezeNucleus + ElementSearchIndex) must be
// bit-identical to the builder-forest oracles on every suite graph, the
// DensestAtLeast scan must match a naive reference, and the whole index
// must stay bit-stable under concurrent readers (the TSan job's target).

#include "search/element_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/nucleus_hierarchy.h"
#include "nucleus/triangle_index.h"
#include "tests/test_util.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

namespace hcd {
namespace {

std::vector<VertexId> Sorted(std::span<const VertexId> s) {
  std::vector<VertexId> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

/// Builder-side and frozen-side truss artifacts over one graph.
struct TrussFixture {
  EdgeIndexer index;
  TrussForest forest;
  std::shared_ptr<const FlatHcdIndex> flat;
};

TrussFixture MakeTruss(const Graph& g) {
  TrussFixture fx;
  fx.index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, fx.index);
  fx.forest = BuildTrussHierarchy(g, fx.index, td);
  fx.flat = std::make_shared<const FlatHcdIndex>(
      FreezeTruss(g, fx.index, fx.forest));
  return fx;
}

struct NucleusFixture {
  EdgeIndexer eidx;
  TriangleIndexer tidx;
  NucleusForest forest;
  std::shared_ptr<const FlatHcdIndex> flat;
};

NucleusFixture MakeNucleus(const Graph& g) {
  NucleusFixture fx;
  fx.eidx = BuildEdgeIndexer(g);
  fx.tidx = BuildTriangleIndexer(g, fx.eidx);
  NucleusDecomposition nd = PeelNucleusDecomposition(g, fx.eidx, fx.tidx);
  fx.forest = BuildNucleusHierarchy(g, fx.eidx, fx.tidx, nd);
  fx.flat = std::make_shared<const FlatHcdIndex>(
      FreezeNucleus(g, fx.tidx, fx.forest));
  return fx;
}

class ElementSearchSuite
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(ElementSearchSuite, FrozenTrussCommunityMatchesBuilderOracle) {
  const Graph& g = GetParam().graph;
  const TrussFixture fx = MakeTruss(g);
  const FlatHcdIndex& flat = *fx.flat;
  ASSERT_EQ(flat.NumNodes(), fx.forest.NumNodes());

  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    // Map the frozen node to its builder counterpart through a shared
    // edge: preorder renumbers nodes, so ids do not line up directly.
    ASSERT_FALSE(flat.Vertices(t).empty());
    const TreeNodeId ft = fx.forest.Tid(flat.Vertices(t).front());
    ASSERT_NE(ft, kInvalidNode);
    ASSERT_EQ(Sorted(flat.CoreVertices(t)), Sorted(fx.forest.CoreVertices(ft)));

    const TrussCommunity frozen = TrussCommunityOf(flat, t);
    const TrussCommunity oracle = TrussCommunityOf(g, fx.index, fx.forest, ft);
    EXPECT_EQ(frozen.vertices, oracle.vertices);
    EXPECT_EQ(frozen.num_edges, oracle.num_edges);
    EXPECT_EQ(frozen.AverageDegree(), oracle.AverageDegree());
  }
}

TEST_P(ElementSearchSuite, FrozenDensestTrussMatchesBuilderOracle) {
  const Graph& g = GetParam().graph;
  const TrussFixture fx = MakeTruss(g);
  const DensestTrussResult frozen = DensestTruss(*fx.flat);
  const DensestTrussResult oracle = DensestTruss(g, fx.index, fx.forest);

  ASSERT_EQ(frozen.node == kInvalidNode, oracle.node == kInvalidNode);
  if (frozen.node == kInvalidNode) return;
  // Equal-density ties are common (disjoint copies of one shape), and the
  // two scans visit nodes in different orders, so compare the extremal
  // score bit-for-bit rather than the winning node id.
  EXPECT_EQ(frozen.community.AverageDegree(), oracle.community.AverageDegree());
  // The frozen winner's community is self-consistent with CommunityOf.
  const TrussCommunity check = TrussCommunityOf(*fx.flat, frozen.node);
  EXPECT_EQ(frozen.community.vertices, check.vertices);
  EXPECT_EQ(frozen.community.num_edges, check.num_edges);
  EXPECT_EQ(frozen.level, fx.flat->Level(frozen.node));
}

TEST_P(ElementSearchSuite, TrussSearchIndexMatchesFrozenQueries) {
  const Graph& g = GetParam().graph;
  const TrussFixture fx = MakeTruss(g);
  const ElementSearchIndex index(fx.flat);
  const FlatHcdIndex& flat = *fx.flat;
  EXPECT_EQ(index.kind(), HierarchyKind::kTruss);

  ElementWorkspace ws;  // reused across nodes: exercises epoch stamping
  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    const TrussCommunity community = TrussCommunityOf(flat, t);
    EXPECT_EQ(index.CommunityElements(t), community.num_edges);
    EXPECT_EQ(index.CommunityVertices(t), community.vertices.size());
    EXPECT_EQ(index.Density(t), community.AverageDegree());

    std::vector<VertexId> out;
    const ElementHit hit = index.CommunityOf(t, &ws, &out);
    ASSERT_TRUE(hit.found);
    EXPECT_EQ(hit.node, t);
    EXPECT_EQ(hit.level, flat.Level(t));
    EXPECT_EQ(hit.elements, community.num_edges);
    EXPECT_EQ(hit.vertices, community.vertices.size());
    EXPECT_EQ(hit.score, community.AverageDegree());
    EXPECT_EQ(out, community.vertices);
  }

  // Densest: same first-preorder-wins rule as the frozen DensestTruss scan,
  // so the winning node (not just the score) is identical.
  const DensestTrussResult frozen = DensestTruss(flat);
  const ElementHit densest = index.Densest();
  ASSERT_EQ(densest.found, frozen.node != kInvalidNode);
  if (densest.found) {
    EXPECT_EQ(densest.node, frozen.node);
    EXPECT_EQ(densest.level, frozen.level);
    EXPECT_EQ(densest.score, frozen.community.AverageDegree());
    EXPECT_EQ(densest.elements, frozen.community.num_edges);
    EXPECT_EQ(densest.vertices, frozen.community.vertices.size());
  }
}

TEST_P(ElementSearchSuite, DensestAtLeastMatchesNaiveScan) {
  const Graph& g = GetParam().graph;
  const TrussFixture fx = MakeTruss(g);
  const ElementSearchIndex index(fx.flat);
  const FlatHcdIndex& flat = *fx.flat;

  uint32_t max_level = 0;
  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    max_level = std::max(max_level, flat.Level(t));
  }
  for (uint32_t k = 0; k <= max_level + 1; ++k) {
    // Naive reference: best density among nodes of level >= k, first node
    // winning ties.
    TreeNodeId expect = kInvalidNode;
    for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
      if (flat.Level(t) < k) continue;
      if (expect == kInvalidNode || index.Density(t) > index.Density(expect)) {
        expect = t;
      }
    }
    const ElementHit hit = index.DensestAtLeast(k);
    ASSERT_EQ(hit.found, expect != kInvalidNode) << "k=" << k;
    if (hit.found) {
      EXPECT_EQ(hit.node, expect) << "k=" << k;
      EXPECT_EQ(hit.score, index.Density(expect)) << "k=" << k;
    }
  }
}

TEST_P(ElementSearchSuite, FrozenNucleusCommunityMatchesBuilderOracle) {
  const Graph& g = GetParam().graph;
  const NucleusFixture fx = MakeNucleus(g);
  const FlatHcdIndex& flat = *fx.flat;
  ASSERT_EQ(flat.NumNodes(), fx.forest.NumNodes());

  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    ASSERT_FALSE(flat.Vertices(t).empty());
    const TreeNodeId ft = fx.forest.Tid(flat.Vertices(t).front());
    ASSERT_NE(ft, kInvalidNode);
    ASSERT_EQ(Sorted(flat.CoreVertices(t)), Sorted(fx.forest.CoreVertices(ft)));

    const NucleusCommunity frozen = NucleusCommunityOf(flat, t);
    const NucleusCommunity oracle = NucleusCommunityOf(fx.tidx, fx.forest, ft);
    EXPECT_EQ(frozen.vertices, oracle.vertices);
    EXPECT_EQ(frozen.num_triangles, oracle.num_triangles);
    EXPECT_EQ(frozen.Density(), oracle.Density());
  }
}

TEST_P(ElementSearchSuite, NucleusSearchIndexMatchesFrozenQueries) {
  const Graph& g = GetParam().graph;
  const NucleusFixture fx = MakeNucleus(g);
  const ElementSearchIndex index(fx.flat);
  const FlatHcdIndex& flat = *fx.flat;
  EXPECT_EQ(index.kind(), HierarchyKind::kNucleus);

  ElementWorkspace ws;
  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    const NucleusCommunity community = NucleusCommunityOf(flat, t);
    EXPECT_EQ(index.CommunityElements(t), community.num_triangles);
    EXPECT_EQ(index.CommunityVertices(t), community.vertices.size());
    EXPECT_EQ(index.Density(t), community.Density());

    std::vector<VertexId> out;
    const ElementHit hit = index.CommunityOf(t, &ws, &out);
    ASSERT_TRUE(hit.found);
    EXPECT_EQ(hit.score, community.Density());
    EXPECT_EQ(out, community.vertices);
  }

  const ElementHit densest = index.Densest();
  if (densest.found) {
    // The precomputed densest is the first preorder node attaining the
    // maximum density.
    for (TreeNodeId t = 0; t < densest.node; ++t) {
      EXPECT_LT(index.Density(t), densest.score);
    }
    EXPECT_EQ(index.Density(densest.node), densest.score);
  } else {
    EXPECT_EQ(flat.NumNodes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, ElementSearchSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(ElementSearch, CommunityOfAppendsAfterExistingContent) {
  Graph g = RingOfCliques(4, 5);
  const TrussFixture fx = MakeTruss(g);
  const ElementSearchIndex index(fx.flat);
  ASSERT_GT(fx.flat->NumNodes(), 0u);

  ElementWorkspace ws;
  std::vector<VertexId> out = {777, 3};
  const ElementHit hit = index.CommunityOf(0, &ws, &out);
  ASSERT_TRUE(hit.found);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], 777u);  // pre-existing prefix untouched
  EXPECT_EQ(out[1], 3u);
  EXPECT_TRUE(std::is_sorted(out.begin() + 2, out.end()));
  EXPECT_EQ(out.size() - 2, hit.vertices);
}

TEST(ElementSearch, EmptyHierarchyAnswersNotFound) {
  const TrussFixture fx = MakeTruss(PathGraph(4));  // edges, but no nodes
  // A path has no triangles, so every edge has trussness 2 and the forest
  // is non-empty; an edgeless graph gives the truly empty case.
  const TrussFixture empty = MakeTruss(Graph());
  const ElementSearchIndex index(empty.flat);
  EXPECT_FALSE(index.Densest().found);
  EXPECT_FALSE(index.DensestAtLeast(3).found);
  ElementWorkspace ws;
  std::vector<VertexId> out;
  EXPECT_FALSE(index.CommunityOf(kInvalidNode, &ws, &out).found);
  EXPECT_TRUE(out.empty());
  (void)fx;
}

// Sweep: randomized graphs, frozen truss serve vs builder oracle end to
// end (the randomized half of the freeze/serve equivalence requirement).
TEST(ElementSearch, RandomizedSweepMatchesOracles) {
  for (const uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(160, 900, seed);
    const TrussFixture fx = MakeTruss(g);
    const ElementSearchIndex index(fx.flat);
    const FlatHcdIndex& flat = *fx.flat;
    for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
      const TreeNodeId ft = fx.forest.Tid(flat.Vertices(t).front());
      const TrussCommunity oracle =
          TrussCommunityOf(g, fx.index, fx.forest, ft);
      ASSERT_EQ(index.Density(t), oracle.AverageDegree())
          << "seed=" << seed << " node=" << t;
      ASSERT_EQ(index.CommunityVertices(t), oracle.vertices.size());
    }
  }
}

// Concurrent readers: many threads over one const index, each with its own
// workspace, every answer bit-identical to the serial baseline. This is
// the test the TSan job runs to certify the QuerySnapshot-grade contract.
TEST(ElementSearch, ConcurrentReadersBitIdentical) {
  Graph g = BarabasiAlbert(500, 6, 77);
  const TrussFixture fx = MakeTruss(g);
  const ElementSearchIndex index(fx.flat);
  const TreeNodeId num_nodes = fx.flat->NumNodes();
  ASSERT_GT(num_nodes, 0u);

  constexpr int kQueries = 256;
  struct Answer {
    ElementHit hit;
    std::vector<VertexId> community;
  };
  auto run_query = [&](int q, ElementWorkspace* ws) {
    Answer a;
    if (q % 2 == 0) {
      a.hit = index.DensestAtLeast(static_cast<uint32_t>(q) % 8);
      if (a.hit.found) index.CommunityOf(a.hit.node, ws, &a.community);
    } else {
      const TreeNodeId t =
          static_cast<TreeNodeId>((uint64_t{2654435761u} * q) % num_nodes);
      a.hit = index.CommunityOf(t, ws, &a.community);
    }
    return a;
  };

  std::vector<Answer> baseline(kQueries);
  {
    ElementWorkspace ws;
    for (int q = 0; q < kQueries; ++q) baseline[q] = run_query(q, &ws);
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ElementWorkspace ws;
      for (int q = i; q < kQueries; ++q) {  // staggered start per thread
        const Answer a = run_query(q, &ws);
        const Answer& b = baseline[q];
        const bool same =
            a.hit.found == b.hit.found && a.hit.node == b.hit.node &&
            a.hit.level == b.hit.level && a.hit.elements == b.hit.elements &&
            a.hit.vertices == b.hit.vertices && a.hit.score == b.hit.score &&
            a.community == b.community;
        if (!same) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace hcd
