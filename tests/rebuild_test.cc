#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/core_decomposition.h"
#include "core/dynamic.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/phcd.h"
#include "hcd/rebuild.h"
#include "hcd/validate.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

FlatHcdIndex FreshFlat(const Graph& g, const CoreDecomposition& cd) {
  return Freeze(PhcdBuild(g, cd));
}

CoreDecomposition CdOf(const DynamicCoreIndex& index) {
  CoreDecomposition cd;
  cd.coreness = index.CorenessValues();
  cd.k_max = index.KMax();
  return cd;
}

std::vector<VertexId> TouchedOf(const BatchStats& stats) {
  std::vector<VertexId> touched = stats.changed_vertices;
  for (const auto& [u, v] : stats.applied_edges) {
    touched.push_back(u);
    touched.push_back(v);
  }
  return touched;
}

/// Churns a sparse (hence many-component) random graph with batches and
/// checks that the incremental splice equals a from-scratch freeze after
/// every batch, while staying chained on the *spliced* index — so splice
/// errors would compound and get caught.
TEST(Rebuild, IncrementalMatchesFullFreezeAcrossBatches) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnp(250, 0.008, seed);
    DynamicCoreIndex index(g);
    FlatHcdIndex current = FreshFlat(g, CdOf(index));
    Rng rng(seed + 500);
    RebuildOptions options;
    options.full_rebuild_threshold = 1.1;  // force the incremental path
    for (int round = 0; round < 6; ++round) {
      std::vector<EdgeUpdate> batch;
      for (int i = 0; i < 20; ++i) {
        const VertexId u = static_cast<VertexId>(rng.Uniform(250));
        const VertexId v = static_cast<VertexId>(rng.Uniform(250));
        if (u == v) continue;
        batch.push_back({u, v,
                         index.HasEdge(u, v) ? EdgeOp::kRemove
                                             : EdgeOp::kInsert});
      }
      BatchStats stats;
      ASSERT_TRUE(index.ApplyBatch(batch, &stats).ok());

      const Graph updated = index.ToGraph();
      const CoreDecomposition cd = CdOf(index);
      const RebuildPlan plan =
          PlanRebuild(current, TouchedOf(stats), options);
      EXPECT_FALSE(plan.full_rebuild);
      FlatHcdIndex spliced;
      ASSERT_TRUE(
          ApplyRebuild(plan, current, updated, cd, nullptr, &spliced).ok());
      ASSERT_TRUE(ValidateHcd(updated, cd, spliced).ok());
      ASSERT_TRUE(HcdEquals(spliced, FreshFlat(updated, cd)));
      current = std::move(spliced);
    }
  }
}

TEST(Rebuild, FullRebuildPathMatchesToo) {
  Graph g = ErdosRenyiGnm(200, 600, 3);
  DynamicCoreIndex index(g);
  FlatHcdIndex current = FreshFlat(g, CdOf(index));
  BatchStats stats;
  const std::vector<EdgeUpdate> batch = {{0, 100, EdgeOp::kInsert},
                                         {5, 150, EdgeOp::kInsert}};
  ASSERT_TRUE(index.ApplyBatch(batch, &stats).ok());
  const Graph updated = index.ToGraph();
  const CoreDecomposition cd = CdOf(index);
  RebuildOptions options;
  options.full_rebuild_threshold = 0.0;  // anything dirty => full
  const RebuildPlan plan = PlanRebuild(current, TouchedOf(stats), options);
  EXPECT_TRUE(plan.full_rebuild);
  FlatHcdIndex rebuilt;
  ASSERT_TRUE(
      ApplyRebuild(plan, current, updated, cd, nullptr, &rebuilt).ok());
  ASSERT_TRUE(HcdEquals(rebuilt, FreshFlat(updated, cd)));
}

TEST(Rebuild, UntouchedPlanReproducesTheIndex) {
  Graph g = ErdosRenyiGnp(150, 0.02, 9);
  const CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = FreshFlat(g, cd);
  const RebuildPlan plan = PlanRebuild(flat, {}, {});
  EXPECT_TRUE(plan.dirty_roots.empty());
  EXPECT_EQ(plan.dirty_fraction, 0.0);
  FlatHcdIndex copy;
  ASSERT_TRUE(ApplyRebuild(plan, flat, g, cd, nullptr, &copy).ok());
  EXPECT_TRUE(HcdEquals(copy, flat));
}

TEST(Rebuild, PlanDirtiesWholeTreesOnly) {
  // Two disjoint triangles: touching one vertex dirties exactly its
  // component's tree.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(5, 3);
  Graph g = std::move(b).Build(6);
  const CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = FreshFlat(g, cd);
  const std::vector<VertexId> touched = {1};
  const RebuildPlan plan = PlanRebuild(flat, touched, {});
  ASSERT_EQ(plan.dirty_roots.size(), 1u);
  std::vector<VertexId> dirty = plan.dirty_vertices;
  std::sort(dirty.begin(), dirty.end());
  EXPECT_EQ(dirty, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(plan.dirty_fraction, 0.5);
  // Half the graph dirty exceeds the default threshold...
  EXPECT_TRUE(plan.full_rebuild);
  // ...but not a permissive one.
  RebuildOptions lax;
  lax.full_rebuild_threshold = 0.9;
  EXPECT_FALSE(PlanRebuild(flat, touched, lax).full_rebuild);
}

TEST(Rebuild, RejectsVertexSetChange) {
  Graph g = ErdosRenyiGnm(50, 100, 1);
  const CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = FreshFlat(g, cd);
  Graph bigger = ErdosRenyiGnm(60, 100, 1);
  const CoreDecomposition bigger_cd = BzCoreDecomposition(bigger);
  FlatHcdIndex out;
  EXPECT_FALSE(
      ApplyRebuild(PlanRebuild(flat, {}, {}), flat, bigger, bigger_cd,
                   nullptr, &out)
          .ok());
}

}  // namespace
}  // namespace hcd
