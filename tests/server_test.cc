// Tests of the socket query server stack (src/server): wire protocol
// round-trips, the epoch-keyed result cache's invalidation rule, the
// shared ExecuteQuery scoring path, and the server end to end over real
// loopback sockets — including the concurrent soak the TSan CI job runs,
// where serve workers answer through the cache while a writer publishes
// new generations.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "engine/live.h"
#include "graph/generators.h"
#include "hcd/query.h"
#include "search/element_search.h"
#include "search/metrics.h"
#include "server/client.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "server/slow_log.h"
#include "tests/test_util.h"

namespace hcd::server {
namespace {

using hcd::testing::JsonValue;
using hcd::testing::ParseJson;

std::vector<EdgeUpdate> ToggleBatch(const DynamicCoreIndex& index, Rng& rng,
                                    size_t size) {
  const VertexId n = index.NumVertices();
  std::vector<EdgeUpdate> batch;
  while (batch.size() < size) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    batch.push_back(
        {u, v, index.HasEdge(u, v) ? EdgeOp::kRemove : EdgeOp::kInsert});
  }
  return batch;
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, QueryRequestRoundTrips) {
  QueryRequest request;
  request.metric = Metric::kConductance;
  request.k = 3;
  request.max_return_vertices = 7;
  request.vertices = {5, 1, 9};
  const std::string payload = EncodeQueryRequest(request);

  MessageType type;
  ASSERT_TRUE(DecodeRequestType(payload, &type));
  EXPECT_EQ(type, MessageType::kQuery);

  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(payload, &decoded));
  EXPECT_EQ(decoded.metric, request.metric);
  EXPECT_EQ(decoded.k, request.k);
  EXPECT_EQ(decoded.max_return_vertices, request.max_return_vertices);
  EXPECT_EQ(decoded.vertices, request.vertices);
}

TEST(Protocol, QueryResponseRoundTripsScoreBitExactly) {
  QueryResponse response;
  response.status = ResponseStatus::kOk;
  response.epoch = 42;
  response.cache_hit = true;
  response.found = true;
  response.level = 6;
  response.core_size = 123456789012345ull;
  response.score = 0.1 + 0.2;  // not representable tidily: bits must survive
  response.vertices = {3, 1, 4, 1};
  const std::string payload = EncodeQueryResponse(response);

  QueryResponse decoded;
  ASSERT_TRUE(DecodeQueryResponse(payload, &decoded));
  EXPECT_EQ(decoded.status, ResponseStatus::kOk);
  EXPECT_EQ(decoded.epoch, response.epoch);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_TRUE(decoded.found);
  EXPECT_EQ(decoded.level, response.level);
  EXPECT_EQ(decoded.core_size, response.core_size);
  EXPECT_EQ(decoded.score, response.score);  // exact, not near
  EXPECT_EQ(decoded.vertices, response.vertices);
}

TEST(Protocol, StatusOnlyResponsesCarryNoBody) {
  for (const ResponseStatus status :
       {ResponseStatus::kOverloaded, ResponseStatus::kBadRequest}) {
    const std::string payload = EncodeStatusOnlyResponse(status);
    EXPECT_EQ(payload.size(), 1u);
    QueryResponse decoded;
    ASSERT_TRUE(DecodeQueryResponse(payload, &decoded));
    EXPECT_EQ(decoded.status, status);
  }
}

TEST(Protocol, MetricsResponseRoundTrips) {
  const std::string text = "# HELP x y\nx 1\n";
  const std::string payload = EncodeMetricsResponse(text);
  ResponseStatus status = ResponseStatus::kBadRequest;
  std::string decoded;
  ASSERT_TRUE(DecodeMetricsResponse(payload, &status, &decoded));
  EXPECT_EQ(status, ResponseStatus::kOk);
  EXPECT_EQ(decoded, text);
}

TEST(Protocol, DecodersRejectMalformedPayloads) {
  QueryRequest valid;
  valid.vertices = {1, 2};
  const std::string good = EncodeQueryRequest(valid);

  QueryRequest out;
  MessageType type;
  EXPECT_FALSE(DecodeRequestType("", &type));
  EXPECT_FALSE(DecodeRequestType("\x07", &type));  // unknown message type
  EXPECT_FALSE(DecodeQueryRequest("", &out));
  // Truncated payload: count says 2 vertices, bytes hold 1.
  EXPECT_FALSE(DecodeQueryRequest(good.substr(0, good.size() - 4), &out));
  // Trailing garbage after the advertised vertices.
  EXPECT_FALSE(DecodeQueryRequest(good + "????", &out));
  // Out-of-range metric index.
  std::string bad_metric = good;
  bad_metric[1] = '\x7f';
  EXPECT_FALSE(DecodeQueryRequest(bad_metric, &out));

  QueryResponse response_out;
  EXPECT_FALSE(DecodeQueryResponse("", &response_out));
  EXPECT_FALSE(DecodeQueryResponse("\x09", &response_out));  // bad status
}

TEST(Protocol, CacheKeyCanonicalizesVertexSets) {
  QueryRequest a, b;
  a.metric = b.metric = Metric::kModularity;
  a.k = b.k = 2;
  a.vertices = {7, 3, 3, 5};
  b.vertices = {5, 7, 3};
  // Same logical query -> same key, regardless of order and duplicates.
  EXPECT_EQ(CacheKeyFor(a), CacheKeyFor(b));
  // max_return_vertices deliberately does NOT key the cache: it only caps
  // the echoed member list, not the answer.
  b.max_return_vertices = 99;
  EXPECT_EQ(CacheKeyFor(a), CacheKeyFor(b));
  b.k = 3;
  EXPECT_NE(CacheKeyFor(a), CacheKeyFor(b));
  b.k = 2;
  b.metric = Metric::kCutRatio;
  EXPECT_NE(CacheKeyFor(a), CacheKeyFor(b));
}

TEST(Protocol, TraceContextRoundTripsAsAVersionTwoTail) {
  QueryRequest request;
  request.metric = Metric::kCutRatio;
  request.k = 2;
  request.vertices = {4, 8};
  const std::string untraced = EncodeQueryRequest(request);

  request.trace_id = 0xdeadbeefcafef00dull;
  request.sampled = true;
  const std::string traced = EncodeQueryRequest(request);
  ASSERT_EQ(traced.size(), untraced.size() + 9);  // u64 id + u8 sampled

  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(traced, &decoded));
  EXPECT_EQ(decoded.trace_id, request.trace_id);
  EXPECT_TRUE(decoded.sampled);
  EXPECT_EQ(decoded.vertices, request.vertices);

  // A version-1 frame (no tail) still decodes, with no trace context —
  // the compatibility contract for old clients against new servers.
  ASSERT_TRUE(DecodeQueryRequest(untraced, &decoded));
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_FALSE(decoded.sampled);
  EXPECT_EQ(decoded.vertices, request.vertices);
}

TEST(Protocol, MalformedTraceTailsAreRejected) {
  QueryRequest request;
  request.vertices = {1};
  request.trace_id = 7;
  request.sampled = false;
  const std::string traced = EncodeQueryRequest(request);

  QueryRequest out;
  // A truncated tail is neither a valid v1 nor a valid v2 frame.
  for (size_t cut = 1; cut < 9; ++cut) {
    EXPECT_FALSE(DecodeQueryRequest(
        std::string_view(traced).substr(0, traced.size() - cut), &out))
        << "tail short by " << cut;
  }
  // The sampled flag is strictly 0 or 1.
  std::string bad_flag = traced;
  bad_flag.back() = '\x02';
  EXPECT_FALSE(DecodeQueryRequest(bad_flag, &out));
}

TEST(Protocol, CacheKeyIgnoresTraceContext) {
  QueryRequest plain, traced;
  plain.metric = traced.metric = Metric::kModularity;
  plain.k = traced.k = 1;
  plain.vertices = traced.vertices = {2, 6};
  traced.trace_id = 0x1234;
  traced.sampled = true;
  // The trace id names the request, not the question: traced and untraced
  // askers of the same query must share a cache entry.
  EXPECT_EQ(CacheKeyFor(plain), CacheKeyFor(traced));
}

TEST(Protocol, StatsRequestRoundTripsItsType) {
  const std::string payload = EncodeStatsRequest();
  MessageType type;
  ASSERT_TRUE(DecodeRequestType(payload, &type));
  EXPECT_EQ(type, MessageType::kStats);
}

// --- slow log ---------------------------------------------------------------

TEST(SlowLog, FormatsOneParseableRecordWithExactPhaseSum) {
  SlowLogRecord record;
  record.ts_unix_ms = 1700000000123ull;
  record.reason = "sampled";
  record.regime = "vertex-set";
  record.hierarchy = HierarchyKind::kTruss;
  record.metric = Metric::kConductance;
  record.k = 4;
  record.cache_hit = true;
  record.found = true;
  record.overloaded = true;
  record.epoch = 9;
  record.queue_depth = 3;
  record.timings.trace_id = 0xabcdef;
  record.timings.sampled = true;
  record.timings.queue_ns = 1000;
  record.timings.decode_ns = 200;
  record.timings.cache_ns = 300;
  record.timings.search_ns = 4000;
  record.timings.encode_ns = 500;

  const std::string line = FormatSlowLogRecord(record);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(line, &doc)) << line;
  EXPECT_EQ(doc.Find("ts_unix_ms")->number, 1700000000123.0);
  EXPECT_EQ(doc.Find("reason")->str, "sampled");
  EXPECT_EQ(doc.Find("trace_id")->str, "0xabcdef");
  EXPECT_EQ(doc.Find("regime")->str, "vertex-set");
  EXPECT_EQ(doc.Find("hierarchy")->str, "truss");
  EXPECT_EQ(doc.Find("metric")->str, "conductance");
  EXPECT_EQ(doc.Find("k")->number, 4.0);
  EXPECT_EQ(doc.Find("epoch")->number, 9.0);
  EXPECT_EQ(doc.Find("queue_depth")->number, 3.0);
  const JsonValue* phases = doc.Find("phase_ns");
  ASSERT_NE(phases, nullptr);
  const double sum = phases->Find("queue")->number +
                     phases->Find("decode")->number +
                     phases->Find("cache")->number +
                     phases->Find("search")->number +
                     phases->Find("encode")->number;
  EXPECT_EQ(doc.Find("total_ns")->number, sum);
  EXPECT_EQ(doc.Find("total_ns")->number, 6000.0);
}

// --- result cache -----------------------------------------------------------

CachedResult MakeResult(uint64_t epoch, double score) {
  CachedResult result;
  result.epoch = epoch;
  result.found = true;
  result.node = 1;
  result.level = 2;
  result.core_size = 3;
  result.score = score;
  return result;
}

TEST(ResultCacheTest, HitsOnlyAtTheInsertedEpoch) {
  ResultCache cache;
  cache.Insert(5, "key", MakeResult(5, 1.5));
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(5, "key", &out));
  EXPECT_EQ(out.epoch, 5u);
  EXPECT_EQ(out.score, 1.5);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCacheTest, NewerEpochFlushesWholesale) {
  ResultCache::Options options;
  options.shards = 1;  // all keys share one shard: the flush is observable
  ResultCache cache(options);
  cache.Insert(1, "a", MakeResult(1, 1.0));
  cache.Insert(1, "b", MakeResult(1, 2.0));
  EXPECT_EQ(cache.Size(), 2u);

  // First lookup at epoch 2 drops everything resident from epoch 1.
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(2, "a", &out));
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.stats().epoch_flushes, 1u);
  EXPECT_FALSE(cache.Lookup(2, "b", &out));
}

TEST(ResultCacheTest, DrainingEpochNeverSeesNewerEntries) {
  ResultCache::Options options;
  options.shards = 1;
  ResultCache cache(options);
  cache.Insert(2, "key", MakeResult(2, 9.0));
  // A reader still finishing queries on epoch 1 must not be served the
  // epoch-2 entry, and its own late insert must be dropped.
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(1, "key", &out));
  cache.Insert(1, "key", MakeResult(1, 7.0));
  ASSERT_TRUE(cache.Lookup(2, "key", &out));
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.score, 9.0);
  EXPECT_EQ(cache.stats().stale_drops, 2u);
}

TEST(ResultCacheTest, BoundedShardsStopRetainingNewKeys) {
  ResultCache::Options options;
  options.shards = 1;
  options.max_entries_per_shard = 2;
  ResultCache cache(options);
  cache.Insert(1, "a", MakeResult(1, 1.0));
  cache.Insert(1, "b", MakeResult(1, 2.0));
  cache.Insert(1, "c", MakeResult(1, 3.0));  // full: not retained
  EXPECT_EQ(cache.Size(), 2u);
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(1, "c", &out));
  // Updating a resident key still works at capacity.
  cache.Insert(1, "a", MakeResult(1, 4.0));
  ASSERT_TRUE(cache.Lookup(1, "a", &out));
  EXPECT_EQ(out.score, 4.0);
}

// --- ExecuteQuery -----------------------------------------------------------

class ExecuteQueryTest : public ::testing::Test {
 protected:
  ExecuteQueryTest() : live_(ErdosRenyiGnm(300, 1200, 17)) {}
  LiveEngine live_;
};

TEST_F(ExecuteQueryTest, GlobalBestMatchesSnapshotSearchBitExactly) {
  const QuerySnapshot snapshot = live_.Snapshot();
  SearchWorkspace ws, expect_ws;
  for (const Metric metric : kAllMetrics) {
    QueryRequest request;
    request.metric = metric;
    const QueryOutcome outcome = ExecuteQuery(snapshot, request, &ws);
    const SearchHit expect =
        SearchInto(snapshot.flat(), snapshot.search_index(), metric,
                   &expect_ws);
    ASSERT_TRUE(outcome.found);
    EXPECT_EQ(outcome.node, expect.best_node);
    EXPECT_EQ(outcome.score, expect.best_score);  // bit-identical
    EXPECT_EQ(outcome.level, snapshot.flat().Level(expect.best_node));
    EXPECT_EQ(outcome.core_size, snapshot.flat().CoreSize(expect.best_node));
  }
}

TEST_F(ExecuteQueryTest, LevelConstraintRestrictsTheArgmax) {
  const QuerySnapshot snapshot = live_.Snapshot();
  SearchWorkspace ws;
  QueryRequest request;
  request.metric = Metric::kInternalDensity;
  request.k = 2;
  const QueryOutcome outcome = ExecuteQuery(snapshot, request, &ws);
  ASSERT_TRUE(outcome.found);
  EXPECT_GE(outcome.level, 2u);
  // Exhaustive check: best score among nodes of level >= k.
  double best = 0.0;
  bool any = false;
  for (TreeNodeId node = 0; node < snapshot.flat().NumNodes(); ++node) {
    if (snapshot.flat().Level(node) < 2) continue;
    if (!any || ws.scores[node] > best) {
      best = ws.scores[node];
      any = true;
    }
  }
  ASSERT_TRUE(any);
  EXPECT_EQ(outcome.score, best);

  // An impossible constraint reports not-found, never a wrong node.
  request.k = 1u << 20;
  const QueryOutcome none = ExecuteQuery(snapshot, request, &ws);
  EXPECT_FALSE(none.found);
}

TEST_F(ExecuteQueryTest, VertexQueriesMatchTheAncestorWalk) {
  const QuerySnapshot snapshot = live_.Snapshot();
  SearchWorkspace ws;
  const FlatHcdIndex& flat = snapshot.flat();
  for (VertexId v = 0; v < 20; ++v) {
    const uint32_t k = hcd::CorenessOf(flat, v);
    if (k == 0) continue;
    QueryRequest request;
    request.metric = Metric::kAverageDegree;
    request.k = k;
    request.vertices = {v};
    const QueryOutcome outcome = ExecuteQuery(snapshot, request, &ws);
    ASSERT_TRUE(outcome.found);
    EXPECT_EQ(outcome.node, hcd::NodeOfKCoreContaining(flat, v, k));
    EXPECT_GE(outcome.level, k);
    // Too deep for this vertex: not found.
    request.k = k + 1;
    EXPECT_FALSE(ExecuteQuery(snapshot, request, &ws).found);
  }
}

// --- server end to end ------------------------------------------------------

TEST(QueryServerTest, AnswersQueriesAndCachesRepeats) {
  LiveEngine live(ErdosRenyiGnm(200, 800, 23));
  ServerOptions options;
  options.workers = 2;
  QueryServer server(&live.manager(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  QueryRequest request;
  request.metric = Metric::kConductance;
  request.max_return_vertices = 5;
  QueryResponse first, second;
  ASSERT_TRUE(client.Query(request, &first).ok());
  ASSERT_TRUE(client.Query(request, &second).ok());
  EXPECT_EQ(first.status, ResponseStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(first.found);
  EXPECT_EQ(first.epoch, live.Epoch());
  EXPECT_EQ(second.score, first.score);
  EXPECT_EQ(second.level, first.level);
  EXPECT_EQ(second.core_size, first.core_size);
  EXPECT_LE(first.vertices.size(), 5u);
  EXPECT_EQ(second.vertices, first.vertices);

  // The answer matches the library computed in-process, bit for bit.
  SearchWorkspace ws;
  const QueryOutcome expect = ExecuteQuery(live.Snapshot(), request, &ws);
  EXPECT_EQ(first.score, expect.score);
  EXPECT_EQ(first.level, expect.level);
  EXPECT_EQ(first.core_size, expect.core_size);

  server.Stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.connections, 1u);
}

TEST(QueryServerTest, ServesElementHierarchyAlongsideCore) {
  Graph graph = ErdosRenyiGnm(180, 900, 29);

  // Frozen truss index served next to the live core snapshots.
  const EdgeIndexer eidx = BuildEdgeIndexer(graph);
  const TrussDecomposition td = PeelTrussDecomposition(graph, eidx);
  auto flat = std::make_shared<const FlatHcdIndex>(
      FreezeTruss(graph, eidx, BuildTrussHierarchy(graph, eidx, td)));
  const ElementSearchIndex element_index(flat);
  ASSERT_GT(flat->NumNodes(), 0u);

  LiveEngine live(std::move(graph));
  ServerOptions options;
  options.workers = 2;
  options.element_index = &element_index;
  QueryServer server(&live.manager(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Regime 1: empty ids, k == 0 — the globally densest truss community,
  // bit-identical to the in-process index.
  QueryRequest request;
  request.hierarchy = HierarchyKind::kTruss;
  request.max_return_vertices = 8;
  QueryResponse response;
  ASSERT_TRUE(client.Query(request, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_TRUE(response.found);
  const ElementHit densest = element_index.Densest();
  EXPECT_EQ(response.score, densest.score);
  EXPECT_EQ(response.level, densest.level);
  EXPECT_EQ(response.core_size, densest.elements);
  EXPECT_EQ(response.epoch, live.Epoch());
  // The echoed vertices are the community's member graph vertices,
  // ascending and truncated to max_return_vertices.
  ElementWorkspace ws;
  std::vector<VertexId> expect_vertices;
  element_index.CommunityOf(densest.node, &ws, &expect_vertices);
  if (expect_vertices.size() > 8) expect_vertices.resize(8);
  EXPECT_EQ(response.vertices, expect_vertices);

  // Repeats hit the cache under the same epoch.
  QueryResponse repeat;
  ASSERT_TRUE(client.Query(request, &repeat).ok());
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.score, response.score);

  // Regime 2: level-constrained densest.
  request.k = 3;
  ASSERT_TRUE(client.Query(request, &response).ok());
  const ElementHit at_least = element_index.DensestAtLeast(3);
  EXPECT_EQ(response.found, at_least.found);
  if (response.found) {
    EXPECT_EQ(response.score, at_least.score);
    EXPECT_GE(response.level, 3u);
  }

  // Regime 3: ids carry *element* (edge) ids; the answer is the community
  // containing them all.
  request.k = 0;
  request.vertices = {0};
  ASSERT_TRUE(client.Query(request, &response).ok());
  const TreeNodeId node = hcd::NodeOfKCoreContaining(*flat, 0, 0);
  ASSERT_NE(node, kInvalidNode);
  ASSERT_TRUE(response.found);
  EXPECT_EQ(response.level, flat->Level(node));
  EXPECT_EQ(response.core_size, flat->CoreSize(node));
  EXPECT_EQ(response.score, element_index.Density(node));

  // A hostile out-of-range element id answers found = false, not a crash.
  request.vertices = {flat->NumElements() + 1000};
  ASSERT_TRUE(client.Query(request, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_FALSE(response.found);

  // An unserved kind (nucleus here) answers found = false and keeps the
  // connection open for the next request.
  request.hierarchy = HierarchyKind::kNucleus;
  request.vertices.clear();
  ASSERT_TRUE(client.Query(request, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_FALSE(response.found);
  request.hierarchy = HierarchyKind::kCore;
  ASSERT_TRUE(client.Query(request, &response).ok());
  EXPECT_TRUE(response.found);  // core regime still answers on this socket

  server.Stop();
}

TEST(QueryServerTest, PipelinedRequestsAnswerInOrder) {
  LiveEngine live(ErdosRenyiGnm(150, 600, 29));
  QueryServer server(&live.manager(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr int kBatch = 16;
  std::vector<QueryRequest> requests(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    requests[i].metric = kAllMetrics[i % std::size(kAllMetrics)];
    ASSERT_TRUE(client.SendQuery(requests[i]).ok());
  }
  SearchWorkspace ws;
  const QuerySnapshot snapshot = live.Snapshot();
  for (int i = 0; i < kBatch; ++i) {
    QueryResponse response;
    ASSERT_TRUE(client.ReadQueryResponse(&response).ok());
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    const QueryOutcome expect = ExecuteQuery(snapshot, requests[i], &ws);
    EXPECT_EQ(response.score, expect.score) << "response " << i;
  }
}

// Sends one raw frame (the QueryClient only writes well-formed ones) and
// returns the server's one-byte response status; -1 on read failure.
int RawFrameStatus(uint16_t port, std::string_view payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  std::string frame;
  AppendFrame(&frame, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent, 0);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  // Response: 4-byte length prefix, then at least the status byte.
  char head[5];
  size_t got = 0;
  while (got < sizeof(head)) {
    const ssize_t r = ::recv(fd, head + got, sizeof(head) - got, 0);
    if (r <= 0) {
      ::close(fd);
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  // After a bad request the server closes; drain to EOF to observe it.
  char sink[64];
  while (::recv(fd, sink, sizeof(sink), 0) > 0) {
  }
  ::close(fd);
  return static_cast<uint8_t>(head[4]);
}

TEST(QueryServerTest, MalformedFramesGetBadRequestAndClose) {
  LiveEngine live(ErdosRenyiGnm(100, 300, 31));
  QueryServer server(&live.manager(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  QueryRequest probe;
  const std::string valid = EncodeQueryRequest(probe);
  std::string unknown_type = valid;
  unknown_type[0] = '\x63';  // not a MessageType
  std::string bad_metric = valid;
  bad_metric[1] = '\x7e';  // metric index out of range
  EXPECT_EQ(RawFrameStatus(server.port(), unknown_type),
            static_cast<int>(ResponseStatus::kBadRequest));
  EXPECT_EQ(RawFrameStatus(server.port(), bad_metric),
            static_cast<int>(ResponseStatus::kBadRequest));
  // Truncated query payload.
  EXPECT_EQ(RawFrameStatus(server.port(),
                           std::string_view(valid).substr(0, valid.size() - 1)),
            static_cast<int>(ResponseStatus::kBadRequest));

  // A well-formed client still works on a fresh connection afterwards.
  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  QueryResponse response;
  ASSERT_TRUE(client.Query(probe, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  server.Stop();
  EXPECT_EQ(server.stats().bad_requests, 3u);
}

TEST(QueryServerTest, OverloadedConnectionsAreShedWithAnExplicitFrame) {
  LiveEngine live(ErdosRenyiGnm(100, 300, 37));
  ServerOptions options;
  options.workers = 1;
  options.max_pending = 0;  // admission = idle workers only
  QueryServer server(&live.manager(), options);
  ASSERT_TRUE(server.Start().ok());

  // First connection: admitted (the one worker is idle) and proven owned
  // by completing a query.
  QueryClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()).ok());
  QueryRequest request;
  QueryResponse response;
  Status s = first.Query(request, &response);
  // The very first connect can race worker startup: retry until admitted.
  while (s.ok() && response.status == ResponseStatus::kOverloaded) {
    ASSERT_TRUE(first.Connect("127.0.0.1", server.port()).ok());
    s = first.Query(request, &response);
  }
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(response.status, ResponseStatus::kOk);

  // Second connection: the worker owns the first, nothing is idle, the
  // pending bound is 0 -> shed with the explicit overload frame.
  QueryClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()).ok());
  QueryResponse shed;
  ASSERT_TRUE(second.ReadQueryResponse(&shed).ok());
  EXPECT_EQ(shed.status, ResponseStatus::kOverloaded);

  server.Stop();
  EXPECT_GE(server.stats().shed, 1u);
}

TEST(QueryServerTest, ServesMetricsAndResolvesInstrumentsOnce) {
  MetricsRegistry registry;
  registry.Install();
  {
    LiveEngine live(ErdosRenyiGnm(150, 500, 41));
    QueryServer server(&live.manager(), ServerOptions{});
    ASSERT_TRUE(server.Start().ok());

    // Every instrument was resolved at Start: the serve path must perform
    // zero registry lookups per request.
    const uint64_t lookups_after_start = registry.lookup_count();
    QueryClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    QueryRequest request;
    QueryResponse response;
    constexpr int kRequests = 50;
    for (int i = 0; i < kRequests; ++i) {
      request.metric = kAllMetrics[i % std::size(kAllMetrics)];
      request.k = static_cast<uint32_t>(i % 3);
      ASSERT_TRUE(client.Query(request, &response).ok());
      ASSERT_EQ(response.status, ResponseStatus::kOk);
    }
    EXPECT_EQ(registry.lookup_count(), lookups_after_start)
        << "the per-request path performed registry lookups";

    // The metrics endpoint serves the exposition with the server counters.
    std::string text;
    ASSERT_TRUE(client.FetchMetrics(&text).ok());
    EXPECT_NE(text.find("hcd_server_requests_total 50"), std::string::npos)
        << text;
    EXPECT_NE(text.find("hcd_server_cache_hits_total"), std::string::npos);
    EXPECT_NE(text.find("hcd_query_latency_seconds_bucket"),
              std::string::npos);
    server.Stop();
    EXPECT_EQ(server.stats().metrics_requests, 1u);
  }
  registry.Uninstall();
}

TEST(QueryServerTest, CacheDropsWholesaleWhenTheEpochMoves) {
  LiveEngine live(ErdosRenyiGnm(200, 700, 43));
  QueryServer server(&live.manager(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  QueryRequest request;
  request.metric = Metric::kAverageDegree;
  QueryResponse warm, after;
  ASSERT_TRUE(client.Query(request, &warm).ok());
  ASSERT_TRUE(client.Query(request, &warm).ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.epoch, 0u);

  Rng rng(44);
  ASSERT_TRUE(live.ApplyBatch(ToggleBatch(live.dynamic(), rng, 25), nullptr)
                  .ok());
  ASSERT_TRUE(client.Query(request, &after).ok());
  // The first query on the new generation recomputes: no stale answer.
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.epoch, 1u);
  SearchWorkspace ws;
  const QueryOutcome expect = ExecuteQuery(live.Snapshot(), request, &ws);
  EXPECT_EQ(after.score, expect.score);
  server.Stop();
}

// The TSan soak: serve workers answer a mixed workload through the cache
// over loopback sockets while the writer keeps publishing generations.
// Every response must match an uncached ExecuteQuery against a snapshot
// of the SAME epoch the response claims — i.e. no stale-epoch result is
// ever served across a handover.
TEST(QueryServerTest, SoakCachedServingStaysConsistentAcrossHandover) {
  LiveEngine live(ErdosRenyiGnm(200, 700, 47));
  ServerOptions options;
  options.workers = 2;
  QueryServer server(&live.manager(), options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  // One client per worker: a worker owns its connection to completion, so
  // more clients than workers would leave the extras parked in pending.
  constexpr int kClients = 2;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      // Each client checks answers against its own reader, which may lag
      // the writer exactly like the serve workers do.
      SnapshotReader reader(live.manager());
      SearchWorkspace ws;
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        QueryRequest request;
        request.metric =
            kAllMetrics[(c + i) % std::size(kAllMetrics)];
        request.k = static_cast<uint32_t>(i % 3);
        ++i;
        QueryResponse response;
        ASSERT_TRUE(client.Query(request, &response).ok());
        ASSERT_EQ(response.status, ResponseStatus::kOk);
        // Pin a snapshot of the epoch the server claims to have answered
        // on; the reader may need one refresh to catch up, and may also
        // be one generation behind (in which case skip the cross-check —
        // the epoch equality below is the invariant under test).
        QuerySnapshot snap = reader.Snapshot();
        if (snap.epoch() < response.epoch) snap = reader.Snapshot();
        if (snap.epoch() == response.epoch) {
          const QueryOutcome expect = ExecuteQuery(snap, request, &ws);
          ASSERT_EQ(response.found, expect.found);
          if (expect.found) {
            // Bit-identical to the uncached computation on that epoch.
            ASSERT_EQ(response.score, expect.score)
                << "stale or wrong cached result at epoch "
                << response.epoch;
            ASSERT_EQ(response.level, expect.level);
            ASSERT_EQ(response.core_size, expect.core_size);
          }
        }
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(48);
  uint64_t published = 0;
  while (published < 5) {  // >= 5 handovers under active cached serving
    // Let each generation actually serve (and warm the cache) before the
    // next handover; otherwise all five publishes can land before the
    // client threads issue their first query.
    const uint64_t target = served.load() + 60;
    for (int spin = 0; spin < 5000 && served.load() < target; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    BatchApplyReport report;
    ASSERT_TRUE(
        live.ApplyBatch(ToggleBatch(live.dynamic(), rng, 20), &report).ok());
    if (report.published) ++published;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_GT(served.load(), 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, served.load());
  // The workload repeats (metric, k) pairs, so the warm generations serve
  // plenty of hits even though each handover drops the cache.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.bad_requests, 0u);
}

// --- request-scoped observability -------------------------------------------

TEST(QueryServerTest, StatsJsonMatchesTheAlwaysOnHistograms) {
  MetricsRegistry registry;
  registry.Install();
  {
    LiveEngine live(ErdosRenyiGnm(200, 800, 51));
    ServerOptions options;
    options.workers = 1;
    options.stats_tick_millis = 25;  // fast ticks so windows fill quickly
    QueryServer server(&live.manager(), options);
    ASSERT_TRUE(server.Start().ok());

    QueryClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    constexpr int kRequests = 40;
    QueryRequest request;
    QueryResponse response;
    for (int i = 0; i < kRequests; ++i) {
      request.metric = kAllMetrics[i % std::size(kAllMetrics)];
      request.k = static_cast<uint32_t>(i % 2);
      ASSERT_TRUE(client.Query(request, &response).ok());
      ASSERT_EQ(response.status, ResponseStatus::kOk);
    }
    // Let the ticker capture a sample after the last request so the
    // clamped widest window covers all of them.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::string json;
    ASSERT_TRUE(client.FetchStats(&json).ok());
    JsonValue doc;
    ASSERT_TRUE(ParseJson(json, &doc)) << json;

    const JsonValue* totals = doc.Find("server")->Find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_EQ(totals->Find("requests")->number, kRequests);
    EXPECT_GT(totals->Find("cache_hits")->number, 0.0);
    EXPECT_EQ(totals->Find("bad_requests")->number, 0.0);
    EXPECT_EQ(totals->Find("connections")->number, 1.0);

    // The lifetime quantiles are rendered from the same always-on
    // histogram the registry instrument mirrors, so the JSON p99 equals
    // the registry histogram's Quantile (modulo %.6g formatting).
    const JsonValue* total = doc.Find("total");
    ASSERT_NE(total, nullptr);
    const JsonValue* latency = total->Find("latency_us");
    EXPECT_EQ(latency->Find("count")->number, kRequests);
    const double registry_p99 =
        registry.GetHistogram("hcd_query_latency_seconds")->Quantile(0.99) *
        1e6;
    EXPECT_NEAR(latency->Find("p99_us")->number, registry_p99,
                registry_p99 * 1e-4 + 1e-9);

    // Every phase histogram saw every request, and the per-phase p99s are
    // rendered from the registry-mirrored data too.
    const JsonValue* phases = total->Find("phases_us");
    for (const char* phase :
         {"queue", "decode", "cache", "search", "encode"}) {
      ASSERT_NE(phases->Find(phase), nullptr) << phase;
      EXPECT_EQ(phases->Find(phase)->Find("count")->number, kRequests)
          << phase;
    }
    const double search_p99 =
        registry
            .GetHistogram("hcd_server_phase_seconds", "",
                          {{"phase", "search"}})
            ->Quantile(0.99) *
        1e6;
    EXPECT_NEAR(phases->Find("search")->Find("p99_us")->number, search_p99,
                search_p99 * 1e-4 + 1e-9);

    // The widest window clamps to the full uptime, so it has seen all the
    // requests and reproduces the lifetime quantiles (same observations).
    const JsonValue* windows = doc.Find("windows");
    ASSERT_NE(windows, nullptr);
    ASSERT_FALSE(windows->array.empty());
    const JsonValue* widest = nullptr;
    for (const JsonValue& window : windows->array) {
      if (window.Find("ticks")->number == 60.0) widest = &window;
    }
    ASSERT_NE(widest, nullptr);
    const JsonValue* window_latency = widest->Find("latency_us");
    EXPECT_EQ(window_latency->Find("count")->number, kRequests);
    EXPECT_NEAR(window_latency->Find("p99_us")->number, registry_p99,
                registry_p99 * 1e-4 + 1e-9);
    EXPECT_GT(widest->Find("qps")->number, 0.0);
    EXPECT_EQ(widest->Find("error_rate")->number, 0.0);

    server.Stop();
    EXPECT_GE(server.stats().stats_requests, 1u);
  }
  registry.Uninstall();
}

TEST(QueryServerTest, SlowLogRecordsEveryRequestWithExactPhaseSums) {
  const std::string path = ::testing::TempDir() + "/hcd_server_slow.jsonl";
  std::remove(path.c_str());
  LiveEngine live(ErdosRenyiGnm(200, 800, 53));
  ServerOptions options;
  options.workers = 1;
  options.slow_query_ms = 0.0;  // every request is "slow": log them all
  options.slow_log_path = path;
  options.slow_log_sample_every = 0;
  QueryServer server(&live.manager(), options);
  ASSERT_TRUE(server.Start().ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr int kRequests = 24;
  QueryRequest request;
  QueryResponse response;
  for (int i = 0; i < kRequests; ++i) {
    request.metric = kAllMetrics[i % std::size(kAllMetrics)];
    request.k = static_cast<uint32_t>(i % 3);
    request.vertices.clear();
    if (i % 4 == 3) request.vertices = {static_cast<VertexId>(i)};
    ASSERT_TRUE(client.Query(request, &response).ok());
    ASSERT_EQ(response.status, ResponseStatus::kOk);
  }
  server.Stop();  // drains and closes the slow log

  ASSERT_NE(server.slow_log(), nullptr);
  EXPECT_EQ(server.slow_log()->appended(), kRequests);
  EXPECT_EQ(server.slow_log()->written(), kRequests);
  EXPECT_EQ(server.slow_log()->dropped(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    JsonValue doc;
    ASSERT_TRUE(ParseJson(line, &doc)) << line;
    EXPECT_EQ(doc.Find("reason")->str, "slow");
    EXPECT_EQ(doc.Find("hierarchy")->str, "core");
    // The consecutive-stamp design: phases sum EXACTLY to the total, not
    // within a tolerance.
    const JsonValue* phases = doc.Find("phase_ns");
    ASSERT_NE(phases, nullptr);
    const double sum = phases->Find("queue")->number +
                       phases->Find("decode")->number +
                       phases->Find("cache")->number +
                       phases->Find("search")->number +
                       phases->Find("encode")->number;
    EXPECT_EQ(doc.Find("total_ns")->number, sum) << line;
    // Queue wait is attributed to the connection's first request only.
    if (records > 0) {
      EXPECT_EQ(phases->Find("queue")->number, 0.0);
    }
    ++records;
  }
  EXPECT_EQ(records, kRequests);
  std::remove(path.c_str());
}

TEST(QueryServerTest, TraceSpansPairClientAndServerByTraceId) {
  Tracer tracer;
  tracer.Install();
  std::vector<std::string> client_ids, server_ids;
  {
    LiveEngine live(ErdosRenyiGnm(150, 600, 57));
    ServerOptions options;
    options.workers = 1;
    QueryServer server(&live.manager(), options);
    ASSERT_TRUE(server.Start().ok());

    QueryClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    QueryRequest request;
    QueryResponse response;
    constexpr int kRequests = 3;
    for (int i = 0; i < kRequests; ++i) {
      request.metric = kAllMetrics[i];
      // No explicit trace id: the traced client mints one per request.
      ASSERT_TRUE(client.Query(request, &response).ok());
      ASSERT_EQ(response.status, ResponseStatus::kOk);
    }
    server.Stop();  // joins the workers: the tracer is quiescent now

    int phase_spans = 0;
    for (const TraceSpanRecord& record : tracer.CollectSpans()) {
      const std::string& name = record.span.name;
      if (name == "serve.decode" || name == "serve.cache" ||
          name == "serve.search" || name == "serve.encode") {
        ++phase_spans;
        ASSERT_FALSE(record.span.args.empty());
        EXPECT_EQ(record.span.args[0].key, "trace_id");
        continue;
      }
      if (name != "client.query" && name != "serve.request") continue;
      std::string id;
      bool sampled_seen = false;
      for (const TraceArg& arg : record.span.args) {
        if (arg.key == "trace_id") {
          ASSERT_TRUE(arg.is_text);
          id = arg.text;
        }
        if (arg.key == "sampled") sampled_seen = true;
      }
      ASSERT_FALSE(id.empty()) << name << " span without a trace id";
      EXPECT_NE(id, "0x0") << name;
      EXPECT_TRUE(sampled_seen) << name;
      (name == "client.query" ? client_ids : server_ids).push_back(id);
    }
    EXPECT_EQ(phase_spans, 4 * kRequests);
    ASSERT_EQ(client_ids.size(), static_cast<size_t>(kRequests));
  }
  tracer.Uninstall();

  // The server's request spans carry exactly the ids the client minted:
  // one Perfetto view pairs the two lanes of each query.
  std::sort(client_ids.begin(), client_ids.end());
  std::sort(server_ids.begin(), server_ids.end());
  EXPECT_EQ(client_ids, server_ids);
}

// The registry-drift regression test: after a run mixing answered
// queries, a malformed frame, and connections shed both by admission
// control and by Stop, every registry counter equals its ServerStats
// mirror (instruments are resolved before any server thread exists, and
// every path that bumps an atomic bumps its instrument).
TEST(QueryServerTest, RegistryCountersMirrorServerStatsExactly) {
  MetricsRegistry registry;
  registry.Install();
  {
    LiveEngine live(ErdosRenyiGnm(150, 600, 59));
    ServerOptions options;
    options.workers = 1;
    options.max_pending = 64;
    QueryServer server(&live.manager(), options);
    ASSERT_TRUE(server.Start().ok());

    // Answered queries (one miss, one hit), then a clean close so the one
    // worker frees up for the malformed frame.
    {
      QueryClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      QueryRequest request;
      QueryResponse response;
      ASSERT_TRUE(client.Query(request, &response).ok());
      ASSERT_TRUE(client.Query(request, &response).ok());
      EXPECT_TRUE(response.cache_hit);
    }
    EXPECT_EQ(RawFrameStatus(server.port(), "\x63" "bogus"),
              static_cast<int>(ResponseStatus::kBadRequest));

    // Park the worker on a connection that stays open, then queue two more
    // connections behind it; Stop must shed them through the instrumented
    // path (the historical drift bug: Stop bumped only the atomic).
    QueryClient busy;
    ASSERT_TRUE(busy.Connect("127.0.0.1", server.port()).ok());
    QueryRequest request;
    request.metric = Metric::kConductance;  // distinct key: a cache miss
    QueryResponse response;
    ASSERT_TRUE(busy.Query(request, &response).ok());
    QueryClient parked_a, parked_b;
    ASSERT_TRUE(parked_a.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(parked_b.Connect("127.0.0.1", server.port()).ok());
    // connect() returning only proves the kernel backlog took them; wait
    // until the acceptor has actually queued both.
    for (int spin = 0; spin < 5000; ++spin) {
      JsonValue doc;
      ASSERT_TRUE(ParseJson(server.RenderStatsJson(), &doc));
      if (doc.Find("server")->Find("queue_depth")->number == 2.0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.Stop();
    // The parked connections received the explicit overload frame.
    QueryResponse shed_frame;
    ASSERT_TRUE(parked_a.ReadQueryResponse(&shed_frame).ok());
    EXPECT_EQ(shed_frame.status, ResponseStatus::kOverloaded);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.bad_requests, 1u);
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(registry.GetCounter("hcd_server_requests_total")->Value(),
              stats.requests);
    EXPECT_EQ(registry.GetCounter("hcd_server_cache_hits_total")->Value(),
              stats.cache_hits);
    EXPECT_EQ(registry.GetCounter("hcd_server_bad_requests_total")->Value(),
              stats.bad_requests);
    EXPECT_EQ(registry.GetCounter("hcd_server_overload_total")->Value(),
              stats.shed);
    EXPECT_EQ(
        registry.GetHistogram("hcd_query_latency_seconds")->TotalCount(),
        stats.requests);
  }
  registry.Uninstall();
}

}  // namespace
}  // namespace hcd::server
