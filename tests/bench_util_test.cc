// Tests for the shared benchmark helpers, chiefly the LatencyRecorder that
// query-bench and bench_query_throughput report quantiles through: the
// nearest-rank definition at the tiny sample counts where off-by-one
// indexing would bite (0, 1 and 2 samples), and Merge across per-worker
// recorders.

#include "bench/bench_util.h"

#include <gtest/gtest.h>

namespace hcd::bench {
namespace {

TEST(LatencyRecorder, EmptyReportsZero) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.Count(), 0u);
  EXPECT_DOUBLE_EQ(recorder.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(recorder.P50(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.P99(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Quantile(1.0), 0.0);
}

TEST(LatencyRecorder, OneSampleAnswersEveryQuantile) {
  LatencyRecorder recorder;
  recorder.Record(0.25);
  EXPECT_EQ(recorder.Count(), 1u);
  EXPECT_DOUBLE_EQ(recorder.Quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(recorder.P50(), 0.25);
  EXPECT_DOUBLE_EQ(recorder.P95(), 0.25);
  EXPECT_DOUBLE_EQ(recorder.P99(), 0.25);
  EXPECT_DOUBLE_EQ(recorder.Quantile(1.0), 0.25);
}

TEST(LatencyRecorder, TwoSamplesNearestRank) {
  LatencyRecorder recorder;
  recorder.Record(2.0);  // insertion order must not matter
  recorder.Record(1.0);
  EXPECT_EQ(recorder.Count(), 2u);
  // Nearest rank: ceil(0.5 * 2) = 1st smallest -> the lower sample;
  // every quantile above 0.5 lands on the 2nd.
  EXPECT_DOUBLE_EQ(recorder.P50(), 1.0);
  EXPECT_DOUBLE_EQ(recorder.P95(), 2.0);
  EXPECT_DOUBLE_EQ(recorder.P99(), 2.0);
  EXPECT_DOUBLE_EQ(recorder.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(recorder.Quantile(1.0), 2.0);
}

TEST(LatencyRecorder, HundredSamplesHitExactRanks) {
  LatencyRecorder recorder;
  for (int i = 100; i >= 1; --i) recorder.Record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(recorder.P50(), 50.0);
  EXPECT_DOUBLE_EQ(recorder.P95(), 95.0);
  EXPECT_DOUBLE_EQ(recorder.P99(), 99.0);
  EXPECT_DOUBLE_EQ(recorder.Quantile(1.0), 100.0);
}

TEST(LatencyRecorder, MergeCombinesWorkerRecorders) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.Record(1.0);
  a.Record(3.0);
  b.Record(2.0);
  b.Record(4.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_DOUBLE_EQ(a.P50(), 2.0);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 4.0);
  // Merging an empty recorder changes nothing.
  a.Merge(LatencyRecorder());
  EXPECT_EQ(a.Count(), 4u);
}

TEST(LatencyRecorder, QuantilesStayCorrectAfterRecordingPastAReport) {
  // The sort-once memoization must re-dirty on Record/Merge: a quantile
  // read, more samples, then another read has to see the new data, not
  // the stale sorted order.
  LatencyRecorder recorder;
  recorder.Record(5.0);
  recorder.Record(1.0);
  EXPECT_DOUBLE_EQ(recorder.P50(), 1.0);  // sorts and memoizes here
  recorder.Record(0.5);
  recorder.Record(0.25);
  EXPECT_DOUBLE_EQ(recorder.P50(), 0.5);
  EXPECT_DOUBLE_EQ(recorder.Quantile(1.0), 5.0);

  LatencyRecorder other;
  other.Record(0.1);
  other.Finalize();
  recorder.Merge(other);  // merge after both sides finalized
  EXPECT_DOUBLE_EQ(recorder.Quantile(0.0), 0.1);
  EXPECT_EQ(recorder.Count(), 5u);
}

TEST(LatencyRecorder, FinalizeIsIdempotent) {
  LatencyRecorder recorder;
  recorder.Record(2.0);
  recorder.Record(1.0);
  recorder.Finalize();
  recorder.Finalize();
  EXPECT_DOUBLE_EQ(recorder.P50(), 1.0);
  EXPECT_DOUBLE_EQ(recorder.P99(), 2.0);
}

TEST(DatasetNameFromPath, StripsDirectoryAndExtension) {
  EXPECT_EQ(DatasetNameFromPath("data/web-Google.bin"), "web-Google");
  EXPECT_EQ(DatasetNameFromPath("/a/b/c/graph.txt"), "graph");
  EXPECT_EQ(DatasetNameFromPath("plain"), "plain");
  EXPECT_EQ(DatasetNameFromPath("dir.with.dots/name"), "name");
  EXPECT_EQ(DatasetNameFromPath(".hidden"), ".hidden");  // no stem to keep
  EXPECT_EQ(DatasetNameFromPath("archive.tar.gz"), "archive.tar");
  EXPECT_EQ(DatasetNameFromPath(""), "unnamed");
  EXPECT_EQ(DatasetNameFromPath("dir/"), "unnamed");
}

}  // namespace
}  // namespace hcd::bench
