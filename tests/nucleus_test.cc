#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/validate.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/nucleus_hierarchy.h"
#include "nucleus/triangle_index.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

struct NucleusPipeline {
  Graph graph;
  EdgeIndexer eidx;
  TriangleIndexer tidx;
};

NucleusPipeline Build(Graph g) {
  NucleusPipeline p;
  p.graph = std::move(g);
  p.eidx = BuildEdgeIndexer(p.graph);
  p.tidx = BuildTriangleIndexer(p.graph, p.eidx);
  return p;
}

TEST(TriangleIndexer, EnumeratesAndLooksUp) {
  NucleusPipeline p = Build(CompleteGraph(5));
  EXPECT_EQ(p.tidx.NumTriangles(), 10u);  // C(5,3)
  // Triangle (0,1,2) must be findable from each of its edges.
  for (auto [a, b, c] : {std::array<VertexId, 3>{0, 1, 2}}) {
    EdgeIdx e = p.eidx.IdOf(p.graph, a, b);
    TriIdx t = p.tidx.IdOf(e, c);
    ASSERT_NE(t, kInvalidTriangle);
    EXPECT_EQ(p.tidx.triangles[t], (std::array<VertexId, 3>{a, b, c}));
  }
  EdgeIdx e01 = p.eidx.IdOf(p.graph, 0, 1);
  EXPECT_EQ(p.tidx.IdOf(e01, 0), kInvalidTriangle);
}

TEST(TriangleIndexer, TriangleFreeGraph) {
  NucleusPipeline p = Build(CycleGraph(8));
  EXPECT_EQ(p.tidx.NumTriangles(), 0u);
}

TEST(NucleusDecomposition, CompleteGraphs) {
  // In K_n, every triangle participates in n-3 4-cliques, and the whole
  // clique is one (n-3)-nucleus.
  for (VertexId n : {4u, 5u, 6u, 7u}) {
    NucleusPipeline p = Build(CompleteGraph(n));
    std::vector<uint32_t> sup =
        ComputeTriangleSupports(p.graph, p.eidx, p.tidx);
    for (uint32_t s : sup) EXPECT_EQ(s, n - 3);
    NucleusDecomposition nd =
        PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
    EXPECT_EQ(nd.k_max, n - 3);
    for (uint32_t t : nd.theta) EXPECT_EQ(t, n - 3);
  }
}

TEST(NucleusDecomposition, LoneTriangleHasThetaZero) {
  NucleusPipeline p = Build(CompleteGraph(3));
  NucleusDecomposition nd = PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  ASSERT_EQ(nd.theta.size(), 1u);
  EXPECT_EQ(nd.theta[0], 0u);
  EXPECT_EQ(nd.k_max, 0u);
}

class NucleusSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(NucleusSuite, PeelMatchesNaiveOracle) {
  const Graph& g = GetParam().graph;
  if (g.NumEdges() > 6000) return;  // oracle cost
  NucleusPipeline p = Build(g);
  NucleusDecomposition peel =
      PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  NucleusDecomposition naive =
      NaiveNucleusDecomposition(p.graph, p.eidx, p.tidx);
  EXPECT_EQ(peel.theta, naive.theta);
  EXPECT_EQ(peel.k_max, naive.k_max);
}

TEST_P(NucleusSuite, HierarchyMatchesNaiveOracle) {
  const Graph& g = GetParam().graph;
  if (g.NumEdges() > 20000) return;
  NucleusPipeline p = Build(g);
  NucleusDecomposition nd = PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  NucleusForest parallel = BuildNucleusHierarchy(p.graph, p.eidx, p.tidx, nd);
  NucleusForest oracle = NaiveNucleusHierarchy(p.graph, p.eidx, p.tidx, nd);
  EXPECT_TRUE(HcdEquals(parallel, oracle));
}

TEST_P(NucleusSuite, HierarchyStableAcrossThreadCounts) {
  const Graph& g = GetParam().graph;
  if (g.NumEdges() > 20000) return;
  NucleusPipeline p = Build(g);
  NucleusDecomposition nd = PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  NucleusForest base = BuildNucleusHierarchy(p.graph, p.eidx, p.tidx, nd);
  for (int threads : {2, 4}) {
    ThreadCountGuard guard(threads);
    EXPECT_TRUE(
        HcdEquals(BuildNucleusHierarchy(p.graph, p.eidx, p.tidx, nd), base))
        << "threads=" << threads;
  }
}

TEST_P(NucleusSuite, EveryTrianglePlacedAtItsTheta) {
  const Graph& g = GetParam().graph;
  if (g.NumEdges() > 20000) return;
  NucleusPipeline p = Build(g);
  NucleusDecomposition nd = PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  NucleusForest forest = BuildNucleusHierarchy(p.graph, p.eidx, p.tidx, nd);
  uint64_t placed = 0;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    for (VertexId tri : forest.Vertices(t)) {
      EXPECT_EQ(nd.theta[tri], forest.Level(t));
      ++placed;
    }
    if (forest.Parent(t) != kInvalidNode) {
      EXPECT_LT(forest.Level(forest.Parent(t)), forest.Level(t));
    }
  }
  EXPECT_EQ(placed, p.tidx.NumTriangles());
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, NucleusSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(NucleusHierarchy, TwoCliquesSharingAnEdge) {
  // Two K5s sharing one edge: each K5's triangles form a separate
  // 2-nucleus (no 4-clique spans both), with no common ancestor because no
  // lower-theta shell exists.
  GraphBuilder b;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  // Second K5 on {0, 1, 5, 6, 7} (shares edge (0,1)).
  const VertexId second[] = {0, 1, 5, 6, 7};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) b.AddEdge(second[i], second[j]);
  }
  NucleusPipeline p = Build(std::move(b).Build(8));
  NucleusDecomposition nd = PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  EXPECT_EQ(nd.k_max, 2u);
  NucleusForest forest = BuildNucleusHierarchy(p.graph, p.eidx, p.tidx, nd);
  uint32_t level2 = 0;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    level2 += forest.Level(t) == 2;
  }
  EXPECT_EQ(level2, 2u);
  EXPECT_TRUE(
      HcdEquals(forest, NaiveNucleusHierarchy(p.graph, p.eidx, p.tidx, nd)));
}

TEST(NucleusHierarchy, NestedCliquesNest) {
  // K7 with a pendant K4 glued on a K7-triangle... simpler: K7 plus an
  // extra vertex adjacent to 4 clique vertices: the K8-minus-edges region
  // has lower theta and should sit below the K7 nucleus.
  GraphBuilder b;
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) b.AddEdge(u, v);
  }
  for (VertexId v = 0; v < 4; ++v) b.AddEdge(7, v);
  NucleusPipeline p = Build(std::move(b).Build(8));
  NucleusDecomposition nd = PeelNucleusDecomposition(p.graph, p.eidx, p.tidx);
  NucleusForest forest = BuildNucleusHierarchy(p.graph, p.eidx, p.tidx, nd);
  EXPECT_TRUE(
      HcdEquals(forest, NaiveNucleusHierarchy(p.graph, p.eidx, p.tidx, nd)));
  // The K7 triangles have theta 4; vertex-7 triangles have theta 2 (the
  // K6 on {0..3,7} ... they participate in fewer 4-cliques).
  EXPECT_EQ(nd.k_max, 4u);
  // The deepest node's parent chain reaches a root.
  auto order = forest.NodesByDescendingLevel();
  TreeNodeId deepest = order.front();
  uint32_t hops = 0;
  for (TreeNodeId t = deepest; t != kInvalidNode; t = forest.Parent(t)) {
    ++hops;
    ASSERT_LT(hops, 100u);
  }
  EXPECT_GE(hops, 2u);
}

}  // namespace
}  // namespace hcd
