#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

TEST(GraphBuilder, NormalizesDuplicatesSelfLoopsAndDirection) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // reverse duplicate
  b.AddEdge(0, 1);  // exact duplicate
  b.AddEdge(2, 2);  // self loop
  b.AddEdge(1, 2);
  Graph g = std::move(b).Build(4);
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(GraphBuilder, EmptyBuild) {
  GraphBuilder b;
  Graph g = std::move(b).Build(0);
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(Graph, AdjacencySortedAndSymmetric) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    SCOPED_TRACE(tc.name);
    const Graph& g = tc.graph;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      auto nbrs = g.Neighbors(v);
      EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
      EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
      for (VertexId u : nbrs) {
        EXPECT_NE(u, v);
        EXPECT_TRUE(g.HasEdge(u, v));
      }
    }
  }
}

TEST(Graph, EdgesMatchesAdjacency) {
  Graph g = CycleGraph(5);
  EdgeList edges = g.Edges();
  EXPECT_EQ(edges.size(), 5u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, DegreeStats) {
  Graph g = StarGraph(8);
  EXPECT_EQ(g.MaxDegree(), 7u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0 * 7 / 8);
}

TEST(Generators, CompleteGraph) {
  Graph g = CompleteGraph(7);
  EXPECT_EQ(g.NumEdges(), 21u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.Degree(v), 6u);
}

TEST(Generators, ErdosRenyiGnmExactEdgeCount) {
  Graph g = ErdosRenyiGnm(200, 1000, 42);
  EXPECT_EQ(g.NumVertices(), 200u);
  EXPECT_EQ(g.NumEdges(), 1000u);
}

TEST(Generators, ErdosRenyiDeterministicInSeed) {
  Graph a = ErdosRenyiGnm(100, 300, 7);
  Graph b = ErdosRenyiGnm(100, 300, 7);
  EXPECT_EQ(a.Edges(), b.Edges());
  Graph c = ErdosRenyiGnm(100, 300, 8);
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(Generators, BarabasiAlbertShape) {
  Graph g = BarabasiAlbert(500, 3, 9);
  EXPECT_EQ(g.NumVertices(), 500u);
  // Every non-seed vertex brings exactly 3 edges (no duplicates possible):
  // the 4-vertex seed clique plus 496 arrivals.
  EXPECT_EQ(g.NumEdges(), 6u + 496u * 3u);
  // Preferential attachment should produce a hub well above the minimum.
  EXPECT_GT(g.MaxDegree(), 20u);
}

TEST(Generators, BarabasiAlbertVaryingSpreadsDegrees) {
  Graph g = BarabasiAlbertVarying(2000, 1, 10, 3);
  EXPECT_EQ(g.NumVertices(), 2000u);
  // Some arrivals attach once, so minimum degree 1 must occur; the seed
  // clique and hubs exceed 10.
  VertexId min_deg = g.NumVertices();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    min_deg = std::min(min_deg, g.Degree(v));
  }
  EXPECT_EQ(min_deg, 1u);
  EXPECT_GT(g.MaxDegree(), 10u);
}

TEST(Generators, RMatBounds) {
  Graph g = RMatGraph500(8, 2000, 13);
  EXPECT_LE(g.NumVertices(), 256u);
  EXPECT_LE(g.NumEdges(), 2000u);  // dedup may shrink
  EXPECT_GT(g.NumEdges(), 500u);
}

TEST(Generators, RingOfCliques) {
  Graph g = RingOfCliques(4, 5);
  EXPECT_EQ(g.NumVertices(), 24u);  // 4 cliques of 5 plus 4 bridges
  EXPECT_EQ(g.NumEdges(), 4u * 10u + 8u);
  // Bridges have degree 2.
  for (VertexId b = 20; b < 24; ++b) EXPECT_EQ(g.Degree(b), 2u);
}

TEST(Generators, PaperFigure1Counts) {
  Graph g = PaperFigure1Graph();
  EXPECT_EQ(g.NumVertices(), 16u);
  EXPECT_EQ(g.NumEdges(), 30u);
}

TEST(IoText, RoundTrip) {
  Graph g = ErdosRenyiGnm(60, 150, 3);
  const std::string path = ::testing::TempDir() + "/graph_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeListText(g, path).ok());
  Graph loaded;
  ASSERT_TRUE(LoadEdgeListText(path, &loaded).ok());
  // Text reload compacts ids but preserves structure; compare via sorted
  // degree sequences and edge counts.
  EXPECT_EQ(loaded.NumEdges(), g.NumEdges());
  std::multiset<VertexId> da;
  std::multiset<VertexId> db;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > 0) da.insert(g.Degree(v));
  }
  for (VertexId v = 0; v < loaded.NumVertices(); ++v) {
    db.insert(loaded.Degree(v));
  }
  EXPECT_EQ(da, db);
  std::remove(path.c_str());
}

TEST(IoText, ParsesCommentsAndSymmetrizes) {
  const std::string path = ::testing::TempDir() + "/graph_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# snap style comment\n%% matrix market comment\n");
  std::fprintf(f, "10 20\n20 10\n30 10\n");
  std::fclose(f);
  Graph g;
  ASSERT_TRUE(LoadEdgeListText(path, &g).ok());
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(IoText, MissingFileFails) {
  Graph g;
  Status s = LoadEdgeListText("/nonexistent/nope.txt", &g);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(IoText, MalformedLineFails) {
  const std::string path = ::testing::TempDir() + "/graph_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "1 2\nnot numbers\n");
  std::fclose(f);
  Graph g;
  EXPECT_EQ(LoadEdgeListText(path, &g).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IoBinary, RoundTripExact) {
  Graph g = BarabasiAlbert(200, 3, 5);
  const std::string path = ::testing::TempDir() + "/graph_roundtrip.bin";
  ASSERT_TRUE(SaveBinary(g, path).ok());
  Graph loaded;
  ASSERT_TRUE(LoadBinary(path, &loaded).ok());
  EXPECT_EQ(loaded.NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(IoBinary, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/graph_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "definitely not a graph";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Graph g;
  EXPECT_EQ(LoadBinary(path, &g).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Subgraph, InduceExtractsEdgesAndMapping) {
  Graph g = PaperFigure1Graph();
  // The 4-clique S3.2 lives on vertices 9..12.
  InducedSubgraph sub = Induce(g, {9, 10, 11, 12});
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  EXPECT_EQ(sub.graph.NumEdges(), 6u);
  EXPECT_EQ(sub.vertices.size(), 4u);
}

TEST(Subgraph, CountInducedEdges) {
  Graph g = CompleteGraph(6);
  EXPECT_EQ(CountInducedEdges(g, {0, 1, 2}), 3u);
  EXPECT_EQ(CountInducedEdges(g, {0}), 0u);
}

}  // namespace
}  // namespace hcd
