#include <gtest/gtest.h>

#include <cmath>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/naive_hcd.h"
#include "parallel/omp_utils.h"
#include "search/bks.h"
#include "search/brute.h"
#include "search/pbks.h"
#include "search/search_index.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

struct Pipeline {
  Graph graph;
  CoreDecomposition cd;
  FlatHcdIndex flat;
};

Pipeline Build(const Graph& g) {
  Pipeline p;
  p.graph = g;
  p.cd = BzCoreDecomposition(p.graph);
  p.flat = Freeze(NaiveHcdBuild(p.graph, p.cd));
  return p;
}

void ExpectPrimaryEqual(const std::vector<PrimaryValues>& got,
                        const std::vector<PrimaryValues>& want, bool type_b) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    if (type_b) {
      EXPECT_EQ(got[i].triangles, want[i].triangles);
      EXPECT_EQ(got[i].triplets, want[i].triplets);
    } else {
      EXPECT_EQ(got[i].n_s, want[i].n_s);
      EXPECT_EQ(got[i].edges2, want[i].edges2);
      EXPECT_EQ(got[i].boundary, want[i].boundary);
    }
  }
}

class PbksSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(PbksSuite, TypeAPrimaryMatchesBruteForce) {
  Pipeline p = Build(GetParam().graph);
  const auto pre = PreprocessCorenessCounts(p.graph, p.cd);
  ExpectPrimaryEqual(PbksTypeAPrimary(p.graph, p.cd, p.flat, pre),
                     BruteNodePrimaryValues(p.graph, p.flat),
                     /*type_b=*/false);
}

TEST_P(PbksSuite, TypeBPrimaryMatchesBruteForce) {
  Pipeline p = Build(GetParam().graph);
  const auto pre = PreprocessCorenessCounts(p.graph, p.cd);
  const auto vr = ComputeVertexRank(p.cd);
  ExpectPrimaryEqual(PbksTypeBPrimary(p.graph, p.cd, p.flat, vr, pre),
                     BruteNodePrimaryValues(p.graph, p.flat),
                     /*type_b=*/true);
}

TEST_P(PbksSuite, BksPrimaryMatchesBruteForce) {
  Pipeline p = Build(GetParam().graph);
  const auto index = BuildBksIndex(p.graph, p.cd);
  const auto vr = ComputeVertexRank(p.cd);
  const auto want = BruteNodePrimaryValues(p.graph, p.flat);
  ExpectPrimaryEqual(BksTypeAPrimary(p.graph, p.cd, p.flat, index, vr), want,
                     /*type_b=*/false);
  ExpectPrimaryEqual(BksTypeBPrimary(p.graph, p.cd, p.flat, index, vr), want,
                     /*type_b=*/true);
}

TEST_P(PbksSuite, PbksAndBksAgreeOnEveryMetric) {
  Pipeline p = Build(GetParam().graph);
  for (Metric metric : kAllMetrics) {
    SCOPED_TRACE(MetricName(metric));
    SearchResult pbks = PbksSearch(p.graph, p.cd, p.flat, metric);
    SearchResult bks = BksSearch(p.graph, p.cd, p.flat, metric);
    ASSERT_EQ(pbks.scores.size(), bks.scores.size());
    for (size_t i = 0; i < pbks.scores.size(); ++i) {
      EXPECT_NEAR(pbks.scores[i], bks.scores[i], 1e-9) << "node " << i;
    }
    EXPECT_NEAR(pbks.best_score, bks.best_score, 1e-9);
  }
}

TEST_P(PbksSuite, StableAcrossThreadCounts) {
  Pipeline p = Build(GetParam().graph);
  SearchResult base_a = PbksSearch(p.graph, p.cd, p.flat,
                                   Metric::kConductance);
  SearchResult base_b = PbksSearch(p.graph, p.cd, p.flat,
                                   Metric::kClusteringCoefficient);
  for (int threads : {2, 4}) {
    ThreadCountGuard guard(threads);
    SearchResult a = PbksSearch(p.graph, p.cd, p.flat, Metric::kConductance);
    SearchResult b =
        PbksSearch(p.graph, p.cd, p.flat, Metric::kClusteringCoefficient);
    EXPECT_EQ(a.scores, base_a.scores);
    EXPECT_EQ(b.scores, base_b.scores);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, PbksSuite, ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(Pbks, PaperExample2BestAverageDegreeIsS31) {
  // Figure 1 / Example 2: S3.1 has the highest average degree 40/9 ~ 4.44.
  Pipeline p = Build(PaperFigure1Graph());
  SearchResult r = PbksSearch(p.graph, p.cd, p.flat, Metric::kAverageDegree);
  ASSERT_NE(r.best_node, kInvalidNode);
  EXPECT_EQ(p.flat.Level(r.best_node), 3u);
  EXPECT_EQ(p.flat.CoreVertices(r.best_node).size(), 9u);
  EXPECT_NEAR(r.best_score, 40.0 / 9.0, 1e-12);
}

TEST(Pbks, SearchIndexAgreesWithOneShot) {
  Pipeline p = Build(BarabasiAlbert(250, 4, 21));
  SearchIndex sidx(p.graph, p.cd, p.flat);
  SearchWorkspace ws;
  for (Metric metric : kAllMetrics) {
    SCOPED_TRACE(MetricName(metric));
    SearchHit hit = SearchInto(p.flat, sidx, metric, &ws);
    SearchResult oneshot = PbksSearch(p.graph, p.cd, p.flat, metric);
    EXPECT_EQ(ws.scores, oneshot.scores);
    EXPECT_EQ(hit.best_node, oneshot.best_node);
    EXPECT_EQ(hit.best_score, oneshot.best_score);
  }
  // CoreVertices of the best node round-trips through the frozen index.
  SearchHit hit = SearchInto(p.flat, sidx, Metric::kAverageDegree, &ws);
  auto core = p.flat.CoreVertices(hit.best_node);
  EXPECT_EQ(core.size(), p.flat.CoreSize(hit.best_node));
}

TEST(Pbks, WholeGraphScoresMatchDirectComputation) {
  // A connected graph's lowest node accumulates the entire component;
  // verify against globally computed values on a clique.
  Pipeline p = Build(CompleteGraph(8));
  const auto pre = PreprocessCorenessCounts(p.graph, p.cd);
  auto vals = PbksTypeAPrimary(p.graph, p.cd, p.flat, pre);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0].n_s, 8u);
  EXPECT_EQ(vals[0].edges2, 2u * 28u);
  EXPECT_EQ(vals[0].boundary, 0u);
  const auto vr = ComputeVertexRank(p.cd);
  auto valsb = PbksTypeBPrimary(p.graph, p.cd, p.flat, vr, pre);
  EXPECT_EQ(valsb[0].triangles, 56u);  // C(8,3)
  EXPECT_EQ(valsb[0].triplets, 8u * 21u);  // 8 * C(7,2)
}

TEST(Preprocess, CountsAreExact) {
  Pipeline p = Build(PaperFigure1Graph());
  const auto pre = PreprocessCorenessCounts(p.graph, p.cd);
  for (VertexId v = 0; v < p.graph.NumVertices(); ++v) {
    VertexId gt = 0;
    VertexId eq = 0;
    for (VertexId u : p.graph.Neighbors(v)) {
      gt += p.cd.coreness[u] > p.cd.coreness[v];
      eq += p.cd.coreness[u] == p.cd.coreness[v];
    }
    EXPECT_EQ(pre.greater[v], gt);
    EXPECT_EQ(pre.equal[v], eq);
    EXPECT_EQ(pre.Less(p.graph, v), p.graph.Degree(v) - gt - eq);
  }
}

TEST(Bks, SortedAdjacencyIsCorenessDescending) {
  Pipeline p = Build(BarabasiAlbert(150, 3, 2));
  BksIndex index = BuildBksIndex(p.graph, p.cd);
  for (VertexId v = 0; v < p.graph.NumVertices(); ++v) {
    auto base = p.graph.AdjOffset(v);
    for (VertexId j = 0; j + 1 < p.graph.Degree(v); ++j) {
      EXPECT_GE(p.cd.coreness[index.sorted_adj[base + j]],
                p.cd.coreness[index.sorted_adj[base + j + 1]]);
    }
  }
}

}  // namespace
}  // namespace hcd
