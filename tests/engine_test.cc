// Tests for the HcdEngine pipeline layer: stage memoization (each stage
// computed at most once per engine), options plumbing (algorithm selection,
// thread-count guarding, telemetry on/off), the Load factory, and the JSON
// telemetry shape behind `hcd_cli --json`.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "hcd/lcps.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/validate.h"
#include "parallel/omp_utils.h"
#include "search/pbks.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

/// Sink that counts RecordStage calls per stage label.
class CountingSink : public TelemetrySink {
 public:
  void RecordStage(const StageRecord& record) override {
    ++total_;
    for (auto& [stage, count] : per_stage_) {
      if (stage == record.stage) {
        ++count;
        return;
      }
    }
    per_stage_.push_back({record.stage, 1});
  }

  size_t total() const { return total_; }
  size_t Count(const std::string& stage) const {
    for (const auto& [s, count] : per_stage_) {
      if (s == stage) return count;
    }
    return 0;
  }

 private:
  size_t total_ = 0;
  std::vector<std::pair<std::string, size_t>> per_stage_;
};

TEST(EngineTest, StagesAreMemoized) {
  HcdEngine engine(RMatGraph500(9, 3000, 5));
  const CoreDecomposition* cd = &engine.Coreness();
  const VertexRank* rank = &engine.Rank();
  const HcdForest* forest = &engine.Forest();
  const FlatHcdIndex* flat = &engine.Flat();
  const SearchIndex* searcher = &engine.Searcher();
  // Second calls return the same objects, not recomputations.
  EXPECT_EQ(cd, &engine.Coreness());
  EXPECT_EQ(rank, &engine.Rank());
  EXPECT_EQ(forest, &engine.Forest());
  EXPECT_EQ(flat, &engine.Flat());
  EXPECT_EQ(searcher, &engine.Searcher());
}

TEST(EngineTest, DecompositionRunsExactlyOnce) {
  HcdEngine engine(RMatGraph500(9, 3000, 5));
  // Exercise every stage, several times, in an order where each stage
  // demands its prerequisites.
  engine.Search(Metric::kConductance);
  engine.Search(Metric::kClusteringCoefficient);
  engine.Search(Metric::kAverageDegree);
  engine.Coreness();
  engine.Rank();
  engine.Forest();
  engine.Flat();
  engine.Searcher();
  const StageTelemetry& t = engine.telemetry();
  EXPECT_EQ(t.CountStage("decomposition"), 1u);
  EXPECT_EQ(t.CountStage("construction"), 1u);
  EXPECT_EQ(t.CountStage("construction.freeze"), 1u);
  EXPECT_EQ(t.CountStage("rank"), 1u);
  EXPECT_EQ(t.CountStage("search.preprocess"), 1u);
  EXPECT_EQ(t.CountStage("search.primary_a"), 1u);
  EXPECT_EQ(t.CountStage("search.primary_b"), 1u);
  EXPECT_EQ(t.CountStage("search.score"), 3u);
}

TEST(EngineTest, SinkParameterPlumbing) {
  // The optional TelemetrySink* threaded through the library entry points:
  // null means no instrumentation, a sink receives exactly one stage per
  // call.
  Graph g = ErdosRenyiGnm(300, 900, 1);
  CountingSink sink;
  CoreDecomposition cd = PkcCoreDecomposition(g, &sink);
  EXPECT_EQ(sink.total(), 1u);
  EXPECT_EQ(sink.Count("decomposition"), 1u);
  PhcdBuild(g, cd, &sink);
  EXPECT_EQ(sink.Count("construction"), 1u);
  LcpsBuild(g, cd, &sink);
  EXPECT_EQ(sink.Count("construction"), 2u);
  BzCoreDecomposition(g, &sink);
  EXPECT_EQ(sink.Count("decomposition"), 2u);
  // Null-sink calls still work and add nothing.
  CoreDecomposition cd2 = PkcCoreDecomposition(g);
  EXPECT_EQ(cd2.coreness, cd.coreness);
  EXPECT_EQ(sink.total(), 4u);
}

TEST(EngineTest, AlgoSelectionProducesEquivalentForests) {
  for (auto& c : testing::StandardGraphSuite()) {
    SCOPED_TRACE(c.name);
    HcdEngine phcd(&c.graph, {.algo = EngineAlgo::kPhcd});
    HcdEngine lcps(&c.graph, {.algo = EngineAlgo::kLcps});
    HcdEngine naive(&c.graph, {.algo = EngineAlgo::kNaive});
    EXPECT_TRUE(HcdEquals(phcd.Forest(), naive.Forest()));
    EXPECT_TRUE(HcdEquals(lcps.Forest(), naive.Forest()));
    // The frozen index preserves the hierarchy of its source forest.
    EXPECT_TRUE(HcdEquals(phcd.Forest(), lcps.Flat()));
    EXPECT_TRUE(
        ValidateHcd(c.graph, phcd.Coreness(), phcd.Forest()).ok());
    EXPECT_TRUE(
        ValidateHcd(c.graph, phcd.Coreness(), phcd.Flat()).ok());
  }
}

TEST(EngineTest, ThreadOptionDoesNotLeakGlobalState) {
  const int ambient = MaxThreads();
  HcdEngine engine(RMatGraph500(8, 2000, 3),
                   {.algo = EngineAlgo::kPhcd, .threads = ambient + 1});
  engine.Search(Metric::kAverageDegree);
  // Every stage ran under ThreadCountGuard; the ambient OpenMP setting is
  // untouched.
  EXPECT_EQ(MaxThreads(), ambient);
}

TEST(EngineTest, TelemetryOffLeavesNoRecords) {
  HcdEngine engine(RMatGraph500(8, 2000, 3), {.telemetry = false});
  EXPECT_EQ(engine.sink(), nullptr);
  engine.Search(Metric::kConductance);
  EXPECT_TRUE(engine.telemetry().records().empty());
}

TEST(EngineTest, SearchMatchesDirectPbks) {
  Graph g = RMatGraph500(9, 3000, 7);
  HcdEngine engine(&g);
  for (Metric metric : {Metric::kAverageDegree, Metric::kConductance,
                        Metric::kClusteringCoefficient}) {
    SearchResult via_engine = engine.Search(metric);
    SearchResult direct =
        PbksSearch(g, engine.Coreness(), engine.Flat(), metric);
    EXPECT_EQ(via_engine.best_node, direct.best_node);
    EXPECT_DOUBLE_EQ(via_engine.best_score, direct.best_score);
  }
}

TEST(EngineTest, LoadRecordsLoadStage) {
  Graph g = ErdosRenyiGnm(200, 600, 9);
  const std::string path = ::testing::TempDir() + "/engine_test_graph.bin";
  ASSERT_TRUE(SaveBinary(g, path).ok());

  std::unique_ptr<HcdEngine> engine;
  ASSERT_TRUE(HcdEngine::Load(path, {}, &engine).ok());
  EXPECT_EQ(engine->graph().NumVertices(), g.NumVertices());
  EXPECT_EQ(engine->graph().NumEdges(), g.NumEdges());
  EXPECT_EQ(engine->telemetry().CountStage("load"), 1u);

  std::unique_ptr<HcdEngine> missing;
  EXPECT_FALSE(
      HcdEngine::Load("/nonexistent/graph.bin", {}, &missing).ok());
}

TEST(EngineTest, ParseAndNameRoundTrip) {
  EngineAlgo algo = EngineAlgo::kPhcd;
  EXPECT_TRUE(ParseEngineAlgo("lcps", &algo));
  EXPECT_EQ(algo, EngineAlgo::kLcps);
  EXPECT_TRUE(ParseEngineAlgo("naive", &algo));
  EXPECT_EQ(algo, EngineAlgo::kNaive);
  EXPECT_TRUE(ParseEngineAlgo("phcd", &algo));
  EXPECT_EQ(algo, EngineAlgo::kPhcd);
  EXPECT_FALSE(ParseEngineAlgo("pchd", &algo));
  EXPECT_EQ(algo, EngineAlgo::kPhcd);  // untouched on failure
  for (EngineAlgo a : {EngineAlgo::kPhcd, EngineAlgo::kLcps,
                       EngineAlgo::kNaive}) {
    EngineAlgo parsed;
    ASSERT_TRUE(ParseEngineAlgo(EngineAlgoName(a), &parsed));
    EXPECT_EQ(parsed, a);
  }
}

TEST(TelemetryTest, JsonShape) {
  StageTelemetry t;
  t.RecordStage({"load", 0.5, {{"n", 3}, {"m", 7}}});
  t.RecordStage({"decomposition", 0.25, {}});
  EXPECT_EQ(t.ToJson(),
            "{\"stages\":["
            "{\"name\":\"load\",\"seconds\":0.5,\"counters\":{\"n\":3,\"m\":7}},"
            "{\"name\":\"decomposition\",\"seconds\":0.25}"
            "],\"total_seconds\":0.75,\"peak_stage\":\"load\"}");
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 0.75);
  EXPECT_EQ(t.PeakStage(), "load");
  EXPECT_EQ(t.StageSeconds("load"), 0.5);
  EXPECT_EQ(t.CountStage("load"), 1u);
  EXPECT_EQ(t.CountStage("missing"), 0u);
  t.Clear();
  EXPECT_EQ(t.ToJson(),
            "{\"stages\":[],\"total_seconds\":0,\"peak_stage\":\"\"}");
}

TEST(TelemetryTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(TelemetryTest, ScopedStageNullSinkIsNoop) {
  ScopedStage stage(nullptr, "anything");
  stage.AddCounter("n", 1);  // must not crash
}

}  // namespace
}  // namespace hcd
