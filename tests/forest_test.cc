#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/export.h"
#include "hcd/flat_index.h"
#include "hcd/naive_hcd.h"
#include "hcd/serialize.h"
#include "hcd/stats.h"
#include "hcd/validate.h"

namespace hcd {
namespace {

HcdForest SmallForest() {
  // Root (level 1) with two children (levels 3 and 2), one grandchild.
  HcdForest f(8);
  TreeNodeId root = f.NewNode(1);
  TreeNodeId a = f.NewNode(3);
  TreeNodeId b = f.NewNode(2);
  TreeNodeId c = f.NewNode(5);
  f.AddVertex(root, 0);
  f.AddVertex(root, 1);
  f.AddVertex(a, 2);
  f.AddVertex(a, 3);
  f.AddVertex(b, 4);
  f.AddVertex(c, 5);
  f.AddVertex(c, 6);
  f.AddVertex(c, 7);
  f.SetParent(a, root);
  f.SetParent(b, root);
  f.SetParent(c, a);
  f.BuildChildren();
  return f;
}

TEST(HcdForest, BasicAccessors) {
  HcdForest f = SmallForest();
  EXPECT_EQ(f.NumNodes(), 4u);
  EXPECT_EQ(f.NumVertices(), 8u);
  EXPECT_EQ(f.Level(0), 1u);
  EXPECT_EQ(f.Parent(0), kInvalidNode);
  EXPECT_EQ(f.Roots().size(), 1u);
  EXPECT_EQ(f.Children(0).size(), 2u);
  EXPECT_EQ(f.Tid(5), 3u);
}

TEST(HcdForest, NodesByDescendingLevel) {
  HcdForest f = SmallForest();
  auto order = f.NodesByDescendingLevel();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(f.Level(order[0]), 5u);
  EXPECT_EQ(f.Level(order[1]), 3u);
  EXPECT_EQ(f.Level(order[2]), 2u);
  EXPECT_EQ(f.Level(order[3]), 1u);
}

TEST(HcdForest, CoreVerticesAndSize) {
  HcdForest f = SmallForest();
  EXPECT_EQ(f.CoreSize(0), 8u);
  EXPECT_EQ(f.CoreSize(1), 5u);  // node a: itself + grandchild c
  EXPECT_EQ(f.CoreSize(3), 3u);
  auto core = f.CoreVertices(1);
  EXPECT_EQ(core.size(), 5u);
}

TEST(ForestStats, SmallForestShape) {
  HcdForest f = SmallForest();
  ForestStats stats = ComputeForestStats(f);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_roots, 1u);
  EXPECT_EQ(stats.depth, 3u);  // root -> a -> c
  EXPECT_EQ(stats.max_branching, 2u);
  EXPECT_EQ(stats.max_level, 5u);
  EXPECT_EQ(stats.nodes_per_level[1], 1u);
  EXPECT_EQ(stats.nodes_per_level[3], 1u);
  EXPECT_EQ(stats.elements_per_level[5], 3u);
  std::string text = ForestStatsToString(stats);
  EXPECT_NE(text.find("depth         3"), std::string::npos);
}

TEST(ForestStats, OnionDepthEqualsLevels) {
  Graph g = PlantedHierarchy(OnionSpec(9, 10), 4);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  ForestStats stats = ComputeForestStats(f);
  EXPECT_EQ(stats.depth, 9u);
  EXPECT_EQ(stats.num_roots, 1u);
  EXPECT_EQ(stats.max_branching, 1u);
}

TEST(ForestStats, EmptyForest) {
  ForestStats stats = ComputeForestStats(HcdForest(0));
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.depth, 0u);
}

TEST(Serialize, RoundTrip) {
  Graph g = PlantedHierarchy(BranchingSpec(2, 8, 2, 2, 5), 11);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  const std::string path = ::testing::TempDir() + "/forest.bin";
  ASSERT_TRUE(SaveForest(f, path).ok());
  HcdForest loaded;
  ASSERT_TRUE(LoadForest(path, &loaded).ok());
  EXPECT_TRUE(HcdEquals(f, loaded));
  EXPECT_TRUE(ValidateHcd(g, cd, loaded).ok());
  std::remove(path.c_str());
}

// Hand-writes a v1 snapshot from raw tables, so tests can express states
// the SaveForest API cannot produce (inverted parents, duplicated
// vertices, absurd counts).
void WriteV1File(const std::string& path, uint64_t n,
                 const std::vector<uint32_t>& levels,
                 const std::vector<TreeNodeId>& parents,
                 const std::vector<std::vector<VertexId>>& verts) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t magic = 0x484344464f523031ULL;  // "HCDFOR01"
  const uint64_t num_nodes = levels.size();
  std::fwrite(&magic, sizeof(magic), 1, f);
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(&num_nodes, sizeof(num_nodes), 1, f);
  auto write_vec = [f](const auto& v) {
    const uint64_t size = v.size();
    std::fwrite(&size, sizeof(size), 1, f);
    if (size > 0) std::fwrite(v.data(), sizeof(v[0]), v.size(), f);
  };
  write_vec(levels);
  write_vec(parents);
  for (const auto& vs : verts) write_vec(vs);
  std::fclose(f);
}

TEST(Serialize, V1ParentLevelInversionIsCorruption) {
  // Node 1 (level 1) claims node 0 (level 2) as parent: walking up must
  // strictly decrease the level, so this must be rejected cleanly rather
  // than trip the builder's BuildChildren CHECK.
  const std::string path = ::testing::TempDir() + "/forest_inverted.bin";
  WriteV1File(path, 2, {2, 1}, {kInvalidNode, 0}, {{0}, {1}});
  HcdForest f;
  Status s = LoadForest(path, &f);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("parent level inversion"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Serialize, V1DuplicateVertexPlacementIsCorruption) {
  // Vertex 0 appears in both nodes. In release builds AddVertex would
  // silently overwrite tid_, so the loader must catch it first.
  const std::string path = ::testing::TempDir() + "/forest_dup.bin";
  WriteV1File(path, 2, {1, 2}, {kInvalidNode, 0}, {{0}, {0}});
  HcdForest f;
  Status s = LoadForest(path, &f);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("placed in two nodes"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Serialize, V1HugeVectorCountIsCorruption) {
  // A 2^60 element count in the levels table must fail before any
  // allocation: the remaining file could not possibly hold it.
  const std::string path = ::testing::TempDir() + "/forest_huge.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t magic = 0x484344464f523031ULL;
  const uint64_t n = 4;
  const uint64_t num_nodes = 1;
  const uint64_t huge = 1ULL << 60;
  std::fwrite(&magic, sizeof(magic), 1, f);
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(&num_nodes, sizeof(num_nodes), 1, f);
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);
  HcdForest loaded;
  EXPECT_EQ(LoadForest(path, &loaded).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Serialize, V1ImplausibleHeaderCountsAreCorruption) {
  const std::string path = ::testing::TempDir() + "/forest_counts.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t magic = 0x484344464f523031ULL;
  const uint64_t n = ~0ULL;  // >= kInvalidVertex
  const uint64_t num_nodes = 1;
  std::fwrite(&magic, sizeof(magic), 1, f);
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(&num_nodes, sizeof(num_nodes), 1, f);
  std::fclose(f);
  HcdForest loaded;
  EXPECT_EQ(LoadForest(path, &loaded).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Serialize, LoadForestRejectsV2Snapshots) {
  Graph g = PlantedHierarchy(BranchingSpec(2, 6, 2, 2, 4), 3);
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  const std::string path = ::testing::TempDir() + "/forest_v2_reject.bin";
  ASSERT_TRUE(SaveFlatIndex(flat, path).ok());
  HcdForest loaded;
  Status s = LoadForest(path, &loaded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("LoadFlatIndex"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/forest_bad.bin";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const char junk[32] = "not a forest";
  std::fwrite(junk, 1, sizeof(junk), file);
  std::fclose(file);
  HcdForest f;
  EXPECT_EQ(LoadForest(path, &f).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Export, DotContainsAllNodesAndEdges) {
  HcdForest f = SmallForest();
  std::string dot = ForestToDot(f);
  EXPECT_NE(dot.find("digraph hcd"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("k=5"), std::string::npos);
}

TEST(Export, JsonShape) {
  HcdForest f = SmallForest();
  std::string json = ForestToJson(f);
  EXPECT_NE(json.find("\"level\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"parent\": null"), std::string::npos);
  EXPECT_NE(json.find("\"vertices\": [5, 6, 7]"), std::string::npos);
}

TEST(Validate, DetectsWrongLevel) {
  Graph g = CompleteGraph(4);  // all coreness 3
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f(4);
  TreeNodeId t = f.NewNode(2);  // wrong level
  for (VertexId v = 0; v < 4; ++v) f.AddVertex(t, v);
  f.BuildChildren();
  EXPECT_FALSE(ValidateHcd(g, cd, f).ok());
}

TEST(Validate, DetectsSplitCore) {
  Graph g = CompleteGraph(4);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f(4);
  TreeNodeId a = f.NewNode(3);
  TreeNodeId b = f.NewNode(3);
  f.AddVertex(a, 0);
  f.AddVertex(a, 1);
  f.AddVertex(b, 2);
  f.AddVertex(b, 3);
  f.BuildChildren();
  EXPECT_FALSE(ValidateHcd(g, cd, f).ok());  // not maximal
}

TEST(Validate, DetectsMissingVertex) {
  Graph g = CompleteGraph(3);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f(3);
  TreeNodeId t = f.NewNode(2);
  f.AddVertex(t, 0);
  f.AddVertex(t, 1);
  f.BuildChildren();
  EXPECT_FALSE(ValidateHcd(g, cd, f).ok());
}

TEST(HcdEquals, DistinguishesParents) {
  HcdForest a(4);
  TreeNodeId r1 = a.NewNode(1);
  TreeNodeId c1 = a.NewNode(2);
  TreeNodeId g1 = a.NewNode(3);
  a.AddVertex(r1, 0);
  a.AddVertex(c1, 1);
  a.AddVertex(g1, 2);
  a.AddVertex(g1, 3);
  a.SetParent(c1, r1);
  a.SetParent(g1, c1);
  a.BuildChildren();

  HcdForest b(4);
  TreeNodeId r2 = b.NewNode(1);
  TreeNodeId c2 = b.NewNode(2);
  TreeNodeId g2 = b.NewNode(3);
  b.AddVertex(r2, 0);
  b.AddVertex(c2, 1);
  b.AddVertex(g2, 2);
  b.AddVertex(g2, 3);
  b.SetParent(c2, r2);
  b.SetParent(g2, r2);  // different parent
  b.BuildChildren();

  EXPECT_FALSE(HcdEquals(a, b));
  EXPECT_TRUE(HcdEquals(a, a));
}

}  // namespace
}  // namespace hcd
