#include <gtest/gtest.h>

#include <algorithm>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/local_core_search.h"
#include "hcd/lower_bound.h"
#include "hcd/naive_hcd.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

TEST(LocalCoreSearch, FindsContainingCore) {
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  // From an octahedron vertex (coreness 4): the 4-core has 6 vertices.
  EXPECT_EQ(LocalCoreSearch(g, cd, 0).size(), 6u);
  // From a 3-shell vertex of S3.1 (coreness 3): S3.1 has 9 vertices.
  EXPECT_EQ(LocalCoreSearch(g, cd, 6).size(), 9u);
  // From a 2-shell vertex: the whole graph is the 2-core.
  EXPECT_EQ(LocalCoreSearch(g, cd, 13).size(), 16u);
}

class RcSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(RcSuite, RcRecoversAllParents) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  std::vector<TreeNodeId> parents = RcComputeParents(g, cd, f);
  ASSERT_EQ(parents.size(), f.NumNodes());
  for (TreeNodeId t = 0; t < f.NumNodes(); ++t) {
    EXPECT_EQ(parents[t], f.Parent(t)) << "node " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, RcSuite, ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(LowerBound, CountsComponents) {
  // K5 + path(5..9) + 3 isolated vertices = 1 + 1 + 3 components.
  GraphBuilder b;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  for (VertexId v = 5; v < 9; ++v) b.AddEdge(v, v + 1);
  Graph g = std::move(b).Build(13);
  CoreDecomposition cd = BzCoreDecomposition(g);
  EXPECT_EQ(UnionFindLowerBound(g, cd), 5u);
}

TEST(LowerBound, StableAcrossThreads) {
  Graph g = ErdosRenyiGnm(500, 900, 77);
  CoreDecomposition cd = BzCoreDecomposition(g);
  VertexId base = UnionFindLowerBound(g, cd);
  for (int threads : {1, 2, 4}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(UnionFindLowerBound(g, cd), base);
  }
}

}  // namespace
}  // namespace hcd
