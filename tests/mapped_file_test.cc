/// Unit tests for the storage seam itself: MappedFile's RAII mapping and
/// ArrayRef's owned/aliased dual nature. The higher layers (serialize,
/// engine, serving) only see these two types, so their contracts — views
/// keep mappings alive, copies deep-copy owned data but share mappings,
/// whole-value assignment re-seats to owned mode — are pinned down here.

#include "common/mapped_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hcd {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::vector<uint32_t>& words) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  if (!words.empty()) {
    EXPECT_EQ(std::fwrite(words.data(), sizeof(uint32_t), words.size(), f),
              words.size());
  }
  std::fclose(f);
  return path;
}

TEST(MappedFile, OpensAndExposesBytes) {
  const std::vector<uint32_t> words = {7, 11, 13, 17};
  const std::string path = WriteTempFile("mf_basic.bin", words);

  std::shared_ptr<const MappedFile> file;
  ASSERT_TRUE(MappedFile::Open(path, &file).ok());
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->size(), words.size() * sizeof(uint32_t));
  EXPECT_EQ(file->path(), path);
  EXPECT_EQ(std::memcmp(file->data(), words.data(), file->size()), 0);
  std::remove(path.c_str());
}

TEST(MappedFile, MissingFileIsIoErrorNotCrash) {
  std::shared_ptr<const MappedFile> file;
  const Status s =
      MappedFile::Open(::testing::TempDir() + "/mf_does_not_exist", &file);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(file, nullptr);
}

TEST(MappedFile, EmptyFileMapsToZeroLengthHandle) {
  const std::string path = WriteTempFile("mf_empty.bin", {});
  std::shared_ptr<const MappedFile> file;
  ASSERT_TRUE(MappedFile::Open(path, &file).ok());
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->size(), 0u);
  std::remove(path.c_str());
}

TEST(MappedFile, TotalMappedBytesTracksLifetime) {
  const uint64_t before = MappedFile::TotalMappedBytes();
  const std::vector<uint32_t> words(256, 5);
  const std::string path = WriteTempFile("mf_gauge.bin", words);
  {
    std::shared_ptr<const MappedFile> file;
    ASSERT_TRUE(MappedFile::Open(path, &file).ok());
    EXPECT_EQ(MappedFile::TotalMappedBytes(), before + file->size());
  }
  EXPECT_EQ(MappedFile::TotalMappedBytes(), before);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ArrayRef, owned mode: vector semantics.

TEST(ArrayRef, OwnedModeBehavesLikeVector) {
  ArrayRef<uint32_t> ref = {1, 2, 3};
  EXPECT_FALSE(ref.mapped());
  EXPECT_EQ(ref.size(), 3u);
  EXPECT_EQ(ref[0], 1u);
  EXPECT_EQ(ref.back(), 3u);

  ref.push_back(4);
  EXPECT_EQ(ref.size(), 4u);
  ref.pop_back();
  ref.resize(5);
  EXPECT_EQ(ref.size(), 5u);
  EXPECT_EQ(ref[4], 0u);
  ref[4] = 9;
  EXPECT_EQ(ref[4], 9u);

  ref.assign(2, 7);
  EXPECT_EQ(ref, (ArrayRef<uint32_t>{7, 7}));
}

TEST(ArrayRef, OwnedCopyIsDeep) {
  ArrayRef<uint32_t> a = {1, 2, 3};
  ArrayRef<uint32_t> b = a;
  b[0] = 100;
  EXPECT_EQ(a[0], 1u);
  EXPECT_NE(a.data(), b.data());
}

TEST(ArrayRef, MoveTransfersAndEmptiesSource) {
  ArrayRef<uint32_t> a = {4, 5, 6};
  ArrayRef<uint32_t> b = std::move(a);
  EXPECT_EQ(b, (ArrayRef<uint32_t>{4, 5, 6}));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): pinned contract
}

// ---------------------------------------------------------------------------
// ArrayRef, aliased mode: views co-own the mapping.

/// Opens a mapping over `words` and returns an aliasing ref plus the handle.
ArrayRef<uint32_t> AliasOf(const std::string& name,
                           const std::vector<uint32_t>& words,
                           std::shared_ptr<const MappedFile>* out_file) {
  const std::string path = WriteTempFile(name, words);
  std::shared_ptr<const MappedFile> file;
  EXPECT_TRUE(MappedFile::Open(path, &file).ok());
  std::remove(path.c_str());
  ArrayRef<uint32_t> ref(reinterpret_cast<const uint32_t*>(file->data()),
                         words.size(), file);
  if (out_file != nullptr) *out_file = file;
  return ref;
}

TEST(ArrayRef, AliasedModeReadsTheMapping) {
  std::shared_ptr<const MappedFile> file;
  ArrayRef<uint32_t> ref = AliasOf("ar_alias.bin", {10, 20, 30}, &file);
  EXPECT_TRUE(ref.mapped());
  EXPECT_EQ(ref.size(), 3u);
  EXPECT_EQ(ref[1], 20u);
  EXPECT_EQ(ref.front(), 10u);
  EXPECT_EQ(ref.back(), 30u);
  EXPECT_EQ(static_cast<const void*>(ref.data()),
            static_cast<const void*>(file->data()));

  // Spans and equality cross the storage seam.
  std::span<const uint32_t> span = ref;
  EXPECT_EQ(span.size(), 3u);
  EXPECT_EQ(ref, (ArrayRef<uint32_t>{10, 20, 30}));
}

TEST(ArrayRef, CopyOfAliasSharesTheMapping) {
  std::shared_ptr<const MappedFile> file;
  ArrayRef<uint32_t> a = AliasOf("ar_share.bin", {1, 2}, &file);
  ArrayRef<uint32_t> b = a;
  EXPECT_TRUE(b.mapped());
  EXPECT_EQ(a.data(), b.data());  // a view, not a copy
  EXPECT_EQ(file.use_count(), 3);  // file + a + b
}

TEST(ArrayRef, ViewKeepsMappingAliveAfterHandleDrops) {
  const uint64_t before = MappedFile::TotalMappedBytes();
  ArrayRef<uint32_t> ref;
  {
    std::shared_ptr<const MappedFile> file;
    ref = AliasOf("ar_alive.bin", {42, 43, 44}, &file);
  }
  // The explicit handle is gone (and the file unlinked); the view is the
  // only owner left and the pages must still be readable.
  EXPECT_TRUE(ref.mapped());
  EXPECT_EQ(ref[0], 42u);
  EXPECT_EQ(ref[2], 44u);
  EXPECT_GT(MappedFile::TotalMappedBytes(), before);
  ref = {};  // last owner: unmaps
  EXPECT_EQ(MappedFile::TotalMappedBytes(), before);
}

TEST(ArrayRef, WholeValueAssignmentReseatsToOwned) {
  ArrayRef<uint32_t> ref = AliasOf("ar_reseat.bin", {9, 9, 9}, nullptr);
  ASSERT_TRUE(ref.mapped());
  ref = {1, 2};
  EXPECT_FALSE(ref.mapped());
  EXPECT_EQ(ref, (ArrayRef<uint32_t>{1, 2}));

  ArrayRef<uint32_t> ref2 = AliasOf("ar_reseat2.bin", {9}, nullptr);
  ref2.assign(4, 6);
  EXPECT_FALSE(ref2.mapped());
  EXPECT_EQ(ref2.size(), 4u);

  ArrayRef<uint32_t> ref3 = AliasOf("ar_reseat3.bin", {9}, nullptr);
  ref3 = std::vector<uint32_t>{5, 5};
  EXPECT_FALSE(ref3.mapped());

  // Assigning an owned value over a mapped one drops the mapping.
  ArrayRef<uint32_t> owned = {8};
  ArrayRef<uint32_t> ref4 = AliasOf("ar_reseat4.bin", {9}, nullptr);
  ref4 = owned;
  EXPECT_FALSE(ref4.mapped());
  EXPECT_EQ(ref4[0], 8u);
}

TEST(ArrayRefDeathTest, GrowthMutatorsCheckOnMappedSections) {
  ArrayRef<uint32_t> ref = AliasOf("ar_death.bin", {1, 2, 3}, nullptr);
  ASSERT_TRUE(ref.mapped());
  EXPECT_DEATH(ref.resize(10), "cannot resize a mapped section");
  EXPECT_DEATH(ref.push_back(4), "cannot grow a mapped section");
  EXPECT_DEATH(ref.pop_back(), "cannot shrink a mapped section");
}

}  // namespace
}  // namespace hcd
