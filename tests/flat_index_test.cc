// Tests for the frozen flat representation: Freeze equivalence against the
// builder forest, the preorder/CSR structural invariants, Adopt's
// validation of every invariant, v2 snapshot round-trips (bit-identical),
// the v1 -> v2 migration path, and corrupt-v2 rejection.

#include "hcd/flat_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/serialize.h"
#include "hcd/validate.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

std::vector<VertexId> Sorted(std::span<const VertexId> s) {
  std::vector<VertexId> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

class FlatIndexSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(FlatIndexSuite, FreezeMatchesForestNodeByNode) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = NaiveHcdBuild(g, cd);
  const FlatHcdIndex flat = Freeze(forest);

  ASSERT_EQ(flat.NumNodes(), forest.NumNodes());
  ASSERT_EQ(flat.NumVertices(), forest.NumVertices());
  EXPECT_TRUE(HcdEquals(forest, flat));
  if (g.NumVertices() > 0) {
    EXPECT_TRUE(ValidateHcd(g, cd, flat).ok());
  }

  // Cross-representation per-node equality via representative vertices.
  ASSERT_EQ(flat.Roots().size(), forest.Roots().size());
  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    ASSERT_FALSE(flat.Vertices(t).empty());
    const VertexId rep = flat.Vertices(t).front();
    const TreeNodeId ft = forest.Tid(rep);
    EXPECT_EQ(flat.Level(t), forest.Level(ft));
    EXPECT_EQ(Sorted(flat.Vertices(t)), Sorted(forest.Vertices(ft)));
    EXPECT_EQ(flat.CoreSize(t), forest.CoreSize(ft));
    EXPECT_EQ(Sorted(flat.CoreVertices(t)),
              Sorted(forest.CoreVertices(ft)));
    EXPECT_EQ(flat.Children(t).size(), forest.Children(ft).size());
    const TreeNodeId pa = flat.Parent(t);
    const TreeNodeId fpa = forest.Parent(ft);
    ASSERT_EQ(pa == kInvalidNode, fpa == kInvalidNode);
    if (pa != kInvalidNode) {
      EXPECT_EQ(flat.Level(pa), forest.Level(fpa));
      EXPECT_EQ(forest.Tid(flat.Vertices(pa).front()), fpa);
    }
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(flat.Tid(v) == kInvalidNode, forest.Tid(v) == kInvalidNode);
  }
}

TEST_P(FlatIndexSuite, PreorderInvariantsHold) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  const FlatHcdIndex::Data& d = flat.data();

  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    // CoreVertices is a true O(1) view into the packed vertex array,
    // starting at the node's own vertices.
    const std::span<const VertexId> core = flat.CoreVertices(t);
    EXPECT_EQ(core.data(), d.vertices.data() + d.vertex_offsets[t]);
    EXPECT_EQ(core.size(), flat.CoreSize(t));
    // ... and equals the union of the subtree's own vertex spans.
    uint64_t subtree_verts = 0;
    for (TreeNodeId s = t; s < t + flat.SubtreeNodes(t); ++s) {
      subtree_verts += flat.Vertices(s).size();
      EXPECT_LT(flat.Level(t), s == t ? flat.Level(s) + 1 : flat.Level(s));
    }
    EXPECT_EQ(core.size(), subtree_verts);
    // Children sit exactly at the preorder subtree boundaries.
    TreeNodeId expected = t + 1;
    for (TreeNodeId c : flat.Children(t)) {
      EXPECT_EQ(c, expected);
      EXPECT_EQ(flat.Parent(c), t);
      expected = c + flat.SubtreeNodes(c);
    }
    EXPECT_EQ(expected, t + flat.SubtreeNodes(t));
  }

  // Descending-level groups: a partition of the nodes, strictly descending
  // level between groups, ascending ids within.
  size_t covered = 0;
  uint32_t prev_level = 0;
  for (size_t gi = 0; gi < flat.NumLevelGroups(); ++gi) {
    const std::span<const TreeNodeId> group = flat.LevelGroup(gi);
    ASSERT_FALSE(group.empty());
    if (gi > 0) {
      EXPECT_LT(flat.Level(group.front()), prev_level);
    }
    prev_level = flat.Level(group.front());
    for (size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(flat.Level(group[i]), prev_level);
      if (i > 0) {
        EXPECT_LT(group[i - 1], group[i]);
      }
    }
    covered += group.size();
  }
  EXPECT_EQ(covered, flat.NumNodes());
}

TEST_P(FlatIndexSuite, AdoptAcceptsFreezeOutput) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  FlatHcdIndex adopted;
  ASSERT_TRUE(FlatHcdIndex::Adopt(flat.data(), &adopted).ok());
  EXPECT_TRUE(HcdEquals(flat, adopted));
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, FlatIndexSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(FlatIndex, FreezeStableAcrossThreadCounts) {
  Graph g = BarabasiAlbert(600, 4, 9);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = PhcdBuild(g, cd);
  const FlatHcdIndex base = Freeze(forest);
  for (int threads : {1, 3, 8}) {
    ThreadCountGuard guard(threads);
    const FlatHcdIndex flat = Freeze(forest);
    // Preorder numbering is deterministic, so the arrays match exactly.
    EXPECT_EQ(flat.data().levels, base.data().levels);
    EXPECT_EQ(flat.data().parents, base.data().parents);
    EXPECT_EQ(flat.data().vertices, base.data().vertices);
    EXPECT_EQ(flat.data().tid, base.data().tid);
  }
}

TEST(FlatIndex, MoveFreezeReleasesForest) {
  Graph g = PlantedHierarchy(OnionSpec(5, 8), 2);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = NaiveHcdBuild(g, cd);
  const FlatHcdIndex expect = Freeze(forest);
  const FlatHcdIndex flat = Freeze(std::move(forest));
  EXPECT_TRUE(HcdEquals(expect, flat));
  EXPECT_EQ(forest.NumNodes(), 0u);  // builder arrays released
}

TEST(FlatIndex, EmptyForest) {
  const FlatHcdIndex flat = Freeze(HcdForest(0));
  EXPECT_EQ(flat.NumNodes(), 0u);
  EXPECT_EQ(flat.NumVertices(), 0u);
  EXPECT_EQ(flat.NumLevelGroups(), 0u);
  EXPECT_TRUE(flat.Roots().empty());
  FlatHcdIndex adopted;
  EXPECT_TRUE(FlatHcdIndex::Adopt(flat.data(), &adopted).ok());
}

// ---------------------------------------------------------------------------
// Adopt rejects every class of structural violation.

FlatHcdIndex::Data ValidData() {
  Graph g = PlantedHierarchy(BranchingSpec(2, 8, 2, 2, 4), 17);
  CoreDecomposition cd = BzCoreDecomposition(g);
  return Freeze(NaiveHcdBuild(g, cd)).data();
}

void ExpectAdoptCorruption(FlatHcdIndex::Data d, const char* what) {
  FlatHcdIndex out;
  Status s = FlatHcdIndex::Adopt(std::move(d), &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << what << ": " << s.ToString();
}

TEST(FlatIndexAdopt, RejectsEveryInvariantViolation) {
  const FlatHcdIndex::Data valid = ValidData();
  ASSERT_GE(valid.levels.size(), 3u);

  {
    FlatHcdIndex::Data d = valid;
    d.parents.pop_back();
    ExpectAdoptCorruption(std::move(d), "section size mismatch");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.vertex_offsets[1] = d.vertex_offsets.back() + 10;  // non-monotone + OOB
    ExpectAdoptCorruption(std::move(d), "offsets not monotone");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.subtree_nodes[0] = static_cast<TreeNodeId>(d.levels.size()) + 1;
    ExpectAdoptCorruption(std::move(d), "subtree out of range");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.parents[1] = 2;  // parent after child in preorder
    ExpectAdoptCorruption(std::move(d), "preorder inversion");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.levels[0] = d.levels[1] + 1;  // parent level >= child level
    ExpectAdoptCorruption(std::move(d), "level inversion");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.tid[d.vertices.front()] = static_cast<TreeNodeId>(d.levels.size()) + 7;
    ExpectAdoptCorruption(std::move(d), "tid out of range");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.vertices[0] = d.num_vertices + 1;
    ExpectAdoptCorruption(std::move(d), "vertex id out of range");
  }
  {
    FlatHcdIndex::Data d = valid;
    std::swap(d.desc_level_order[0],
              d.desc_level_order[d.desc_level_order.size() - 1]);
    ExpectAdoptCorruption(std::move(d), "level order not canonical");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.roots[0] = 1;
    ExpectAdoptCorruption(std::move(d), "roots array mismatch");
  }
  {
    FlatHcdIndex::Data d = valid;
    // Break the children <-> subtree bijection without touching parents.
    d.children[0] = d.children.size() > 1 ? d.children[1] : d.children[0] + 1;
    ExpectAdoptCorruption(std::move(d), "children not at boundaries");
  }
  {
    FlatHcdIndex::Data d = valid;
    // An intermediate offset past num_nodes passes the front/back check but
    // must be rejected before it indexes desc_level_order out of bounds.
    const uint32_t num_nodes = static_cast<uint32_t>(d.levels.size());
    d.level_group_offsets = {0, num_nodes + 0xFFFFFF, num_nodes};
    ExpectAdoptCorruption(std::move(d), "level group offset out of range");
  }
  {
    // Worst case for the offset validation: a single-level index, so every
    // in-range prefix of the oversized group is level-homogeneous and
    // nothing but the upfront offset check stands between Adopt and reading
    // desc_level_order far past its end (ASan-visible without the fix).
    FlatHcdIndex::Data d;
    d.num_vertices = 0;
    d.levels = {0};
    d.parents = {kInvalidNode};
    d.subtree_nodes = {1};
    d.child_offsets = {0, 0};
    d.vertex_offsets = {0, 0};
    d.roots = {0};
    d.desc_level_order = {0};
    d.level_group_offsets = {0, 0x01000000u, 1};
    ExpectAdoptCorruption(std::move(d), "offset past single-level order");
  }
  {
    FlatHcdIndex::Data d = valid;
    // A vertex duplicated inside one span while another vertex of the same
    // span goes missing: every slot's tid still matches and the placed
    // totals still balance, so only per-vertex tracking catches it.
    size_t t = 0;
    while (t < d.levels.size() &&
           d.vertex_offsets[t + 1] - d.vertex_offsets[t] < 2) {
      ++t;
    }
    ASSERT_LT(t, d.levels.size()) << "fixture needs a node with >= 2 vertices";
    d.vertices[d.vertex_offsets[t] + 1] = d.vertices[d.vertex_offsets[t]];
    ExpectAdoptCorruption(std::move(d), "duplicate vertex placement");
  }
}

// ---------------------------------------------------------------------------
// v2 snapshots: bit-identical round trip, v1 migration, corrupt files.

std::vector<char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
  std::rewind(f);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(FlatIndexSnapshot, V2RoundTripIsBitIdentical) {
  Graph g = RMatGraph500(9, 4000, 23);
  CoreDecomposition cd = PkcCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(PhcdBuild(g, cd));

  const std::string path1 = ::testing::TempDir() + "/flat_rt1.bin";
  const std::string path2 = ::testing::TempDir() + "/flat_rt2.bin";
  ASSERT_TRUE(SaveFlatIndex(flat, path1).ok());
  FlatHcdIndex loaded;
  ASSERT_TRUE(LoadFlatIndex(path1, &loaded).ok());
  EXPECT_TRUE(HcdEquals(flat, loaded));
  EXPECT_EQ(loaded.data().subtree_nodes, flat.data().subtree_nodes);
  ASSERT_TRUE(SaveFlatIndex(loaded, path2).ok());
  EXPECT_EQ(ReadAll(path1), ReadAll(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(FlatIndexSnapshot, V1MigratesThroughFreeze) {
  Graph g = PlantedForest({OnionSpec(4, 6), OnionSpec(6, 5)}, 31);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = NaiveHcdBuild(g, cd);
  const std::string path = ::testing::TempDir() + "/flat_migrate.bin";
  ASSERT_TRUE(SaveForest(forest, path).ok());

  FlatHcdIndex migrated;
  ASSERT_TRUE(LoadFlatIndex(path, &migrated).ok());
  EXPECT_TRUE(HcdEquals(forest, migrated));
  // Migration produces the same index as freezing directly.
  const FlatHcdIndex direct = Freeze(forest);
  EXPECT_EQ(migrated.data().levels, direct.data().levels);
  EXPECT_EQ(migrated.data().vertices, direct.data().vertices);
  std::remove(path.c_str());
}

class FlatSnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    Graph g = PlantedHierarchy(BranchingSpec(2, 8, 2, 2, 4), 41);
    CoreDecomposition cd = BzCoreDecomposition(g);
    index_ = Freeze(NaiveHcdBuild(g, cd));
    path_ = ::testing::TempDir() + "/flat_corrupt.bin";
    ASSERT_TRUE(SaveFlatIndex(index_, path_).ok());
    bytes_ = ReadAll(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes`, loads, and expects Corruption.
  void ExpectCorrupt(const std::vector<char>& bytes, const char* what) {
    WriteAll(path_, bytes);
    FlatHcdIndex loaded;
    Status s = LoadFlatIndex(path_, &loaded);
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << what << ": " << s.ToString();
  }

  uint64_t HeaderWord(size_t i) const {
    uint64_t w;
    std::memcpy(&w, bytes_.data() + i * sizeof(uint64_t), sizeof(w));
    return w;
  }

  std::vector<char> WithHeaderWord(size_t i, uint64_t value) const {
    std::vector<char> bytes = bytes_;
    std::memcpy(bytes.data() + i * sizeof(uint64_t), &value, sizeof(value));
    return bytes;
  }

  FlatHcdIndex index_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(FlatSnapshotCorruption, Truncation) {
  std::vector<char> bytes = bytes_;
  bytes.resize(bytes.size() - 8);
  ExpectCorrupt(bytes, "dropped tail");
  bytes.resize(32);  // mid-header
  ExpectCorrupt(bytes, "mid-header truncation");
}

TEST_F(FlatSnapshotCorruption, BadMagic) {
  ExpectCorrupt(WithHeaderWord(0, 0x4242424242424242ULL), "bad magic");
}

TEST_F(FlatSnapshotCorruption, HeaderCountsDisagreeWithFileSize) {
  // Each tampered count changes the expected file size (or trips the
  // header plausibility checks) and must be rejected before allocation.
  ExpectCorrupt(WithHeaderWord(2, HeaderWord(2) + 1), "num_nodes + 1");
  ExpectCorrupt(WithHeaderWord(5, HeaderWord(5) + 1), "num_placed + 1");
  ExpectCorrupt(WithHeaderWord(3, HeaderWord(3) + 1), "num_roots + 1");
  ExpectCorrupt(WithHeaderWord(2, 1ULL << 40), "absurd num_nodes");
  ExpectCorrupt(WithHeaderWord(7, 1), "nonzero reserved word");
}

TEST_F(FlatSnapshotCorruption, TamperedSectionsFailAdopt) {
  const uint64_t num_nodes = HeaderWord(2);
  auto padded = [](uint64_t count) {
    return (count * sizeof(uint32_t) + 7) / 8 * 8;
  };
  const size_t header_bytes = 8 * sizeof(uint64_t);

  {
    // parents[1] (section 2, element 1): point it at a later node —
    // preorder inversion.
    std::vector<char> bytes = bytes_;
    const size_t off = header_bytes + padded(num_nodes) + 1 * sizeof(uint32_t);
    const uint32_t bad_parent = 2;
    std::memcpy(bytes.data() + off, &bad_parent, sizeof(bad_parent));
    ExpectCorrupt(bytes, "preorder inversion");
  }
  {
    // tid[0] (the 8th section): out-of-range node id. Sections before tid
    // are levels, parents, subtree_nodes, child_offsets, children,
    // vertex_offsets, vertices.
    std::vector<char> bytes = bytes_;
    const size_t tid_off = header_bytes + 3 * padded(num_nodes) +
                           padded(num_nodes + 1) + padded(HeaderWord(4)) +
                           padded(num_nodes + 1) + padded(HeaderWord(5));
    const uint32_t bad_tid = static_cast<uint32_t>(num_nodes) + 9;
    std::memcpy(bytes.data() + tid_off, &bad_tid, sizeof(bad_tid));
    ExpectCorrupt(bytes, "tid out of range");
  }
  {
    // level_group_offsets[1] (the 10th section) hoisted far past num_nodes:
    // front/back entries and the file size are untouched, so the snapshot
    // passes every header check and the upfront offset validation in Adopt
    // is what rejects it.
    ASSERT_GE(HeaderWord(6), 2u) << "fixture needs >= 2 level groups";
    std::vector<char> bytes = bytes_;
    const size_t group_off = header_bytes + 4 * padded(num_nodes) +
                             2 * padded(num_nodes + 1) +
                             padded(HeaderWord(4)) + padded(HeaderWord(5)) +
                             padded(HeaderWord(1)) + 1 * sizeof(uint32_t);
    const uint32_t bad_offset = static_cast<uint32_t>(num_nodes) + 0xFFFFFF;
    std::memcpy(bytes.data() + group_off, &bad_offset, sizeof(bad_offset));
    ExpectCorrupt(bytes, "level group offset out of range");
  }
}

}  // namespace
}  // namespace hcd
