// Tests for the frozen flat representation: Freeze equivalence against the
// builder forest, the preorder/CSR structural invariants, Adopt's
// validation of every invariant, v2 snapshot round-trips (bit-identical),
// the v1 -> v2 migration path, corrupt-v2 rejection, and the element
// domains (kind-tagged truss/nucleus freezes, v3 snapshots, corrupt-v3
// rejection).

#include "hcd/flat_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mapped_file.h"

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/serialize.h"
#include "hcd/validate.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/nucleus_hierarchy.h"
#include "nucleus/triangle_index.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

namespace hcd {
namespace {

std::vector<VertexId> Sorted(std::span<const VertexId> s) {
  std::vector<VertexId> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

class FlatIndexSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(FlatIndexSuite, FreezeMatchesForestNodeByNode) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = NaiveHcdBuild(g, cd);
  const FlatHcdIndex flat = Freeze(forest);

  ASSERT_EQ(flat.NumNodes(), forest.NumNodes());
  ASSERT_EQ(flat.NumVertices(), forest.NumVertices());
  EXPECT_TRUE(HcdEquals(forest, flat));
  if (g.NumVertices() > 0) {
    EXPECT_TRUE(ValidateHcd(g, cd, flat).ok());
  }

  // Cross-representation per-node equality via representative vertices.
  ASSERT_EQ(flat.Roots().size(), forest.Roots().size());
  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    ASSERT_FALSE(flat.Vertices(t).empty());
    const VertexId rep = flat.Vertices(t).front();
    const TreeNodeId ft = forest.Tid(rep);
    EXPECT_EQ(flat.Level(t), forest.Level(ft));
    EXPECT_EQ(Sorted(flat.Vertices(t)), Sorted(forest.Vertices(ft)));
    EXPECT_EQ(flat.CoreSize(t), forest.CoreSize(ft));
    EXPECT_EQ(Sorted(flat.CoreVertices(t)),
              Sorted(forest.CoreVertices(ft)));
    EXPECT_EQ(flat.Children(t).size(), forest.Children(ft).size());
    const TreeNodeId pa = flat.Parent(t);
    const TreeNodeId fpa = forest.Parent(ft);
    ASSERT_EQ(pa == kInvalidNode, fpa == kInvalidNode);
    if (pa != kInvalidNode) {
      EXPECT_EQ(flat.Level(pa), forest.Level(fpa));
      EXPECT_EQ(forest.Tid(flat.Vertices(pa).front()), fpa);
    }
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(flat.Tid(v) == kInvalidNode, forest.Tid(v) == kInvalidNode);
  }
}

TEST_P(FlatIndexSuite, PreorderInvariantsHold) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  const FlatHcdIndex::Data& d = flat.data();

  for (TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
    // CoreVertices is a true O(1) view into the packed vertex array,
    // starting at the node's own vertices.
    const std::span<const VertexId> core = flat.CoreVertices(t);
    EXPECT_EQ(core.data(), d.vertices.data() + d.vertex_offsets[t]);
    EXPECT_EQ(core.size(), flat.CoreSize(t));
    // ... and equals the union of the subtree's own vertex spans.
    uint64_t subtree_verts = 0;
    for (TreeNodeId s = t; s < t + flat.SubtreeNodes(t); ++s) {
      subtree_verts += flat.Vertices(s).size();
      EXPECT_LT(flat.Level(t), s == t ? flat.Level(s) + 1 : flat.Level(s));
    }
    EXPECT_EQ(core.size(), subtree_verts);
    // Children sit exactly at the preorder subtree boundaries.
    TreeNodeId expected = t + 1;
    for (TreeNodeId c : flat.Children(t)) {
      EXPECT_EQ(c, expected);
      EXPECT_EQ(flat.Parent(c), t);
      expected = c + flat.SubtreeNodes(c);
    }
    EXPECT_EQ(expected, t + flat.SubtreeNodes(t));
  }

  // Descending-level groups: a partition of the nodes, strictly descending
  // level between groups, ascending ids within.
  size_t covered = 0;
  uint32_t prev_level = 0;
  for (size_t gi = 0; gi < flat.NumLevelGroups(); ++gi) {
    const std::span<const TreeNodeId> group = flat.LevelGroup(gi);
    ASSERT_FALSE(group.empty());
    if (gi > 0) {
      EXPECT_LT(flat.Level(group.front()), prev_level);
    }
    prev_level = flat.Level(group.front());
    for (size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(flat.Level(group[i]), prev_level);
      if (i > 0) {
        EXPECT_LT(group[i - 1], group[i]);
      }
    }
    covered += group.size();
  }
  EXPECT_EQ(covered, flat.NumNodes());
}

TEST_P(FlatIndexSuite, AdoptAcceptsFreezeOutput) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  FlatHcdIndex adopted;
  ASSERT_TRUE(FlatHcdIndex::Adopt(flat.data(), &adopted).ok());
  EXPECT_TRUE(HcdEquals(flat, adopted));
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, FlatIndexSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(FlatIndex, FreezeStableAcrossThreadCounts) {
  Graph g = BarabasiAlbert(600, 4, 9);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = PhcdBuild(g, cd);
  const FlatHcdIndex base = Freeze(forest);
  for (int threads : {1, 3, 8}) {
    ThreadCountGuard guard(threads);
    const FlatHcdIndex flat = Freeze(forest);
    // Preorder numbering is deterministic, so the arrays match exactly.
    EXPECT_EQ(flat.data().levels, base.data().levels);
    EXPECT_EQ(flat.data().parents, base.data().parents);
    EXPECT_EQ(flat.data().vertices, base.data().vertices);
    EXPECT_EQ(flat.data().tid, base.data().tid);
  }
}

TEST(FlatIndex, MoveFreezeReleasesForest) {
  Graph g = PlantedHierarchy(OnionSpec(5, 8), 2);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = NaiveHcdBuild(g, cd);
  const FlatHcdIndex expect = Freeze(forest);
  const FlatHcdIndex flat = Freeze(std::move(forest));
  EXPECT_TRUE(HcdEquals(expect, flat));
  EXPECT_EQ(forest.NumNodes(), 0u);  // builder arrays released
}

TEST(FlatIndex, EmptyForest) {
  const FlatHcdIndex flat = Freeze(HcdForest(0));
  EXPECT_EQ(flat.NumNodes(), 0u);
  EXPECT_EQ(flat.NumVertices(), 0u);
  EXPECT_EQ(flat.NumLevelGroups(), 0u);
  EXPECT_TRUE(flat.Roots().empty());
  FlatHcdIndex adopted;
  EXPECT_TRUE(FlatHcdIndex::Adopt(flat.data(), &adopted).ok());
}

// ---------------------------------------------------------------------------
// Adopt rejects every class of structural violation.

FlatHcdIndex::Data ValidData() {
  Graph g = PlantedHierarchy(BranchingSpec(2, 8, 2, 2, 4), 17);
  CoreDecomposition cd = BzCoreDecomposition(g);
  return Freeze(NaiveHcdBuild(g, cd)).data();
}

void ExpectAdoptCorruption(FlatHcdIndex::Data d, const char* what) {
  FlatHcdIndex out;
  Status s = FlatHcdIndex::Adopt(std::move(d), &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << what << ": " << s.ToString();
}

TEST(FlatIndexAdopt, RejectsEveryInvariantViolation) {
  const FlatHcdIndex::Data valid = ValidData();
  ASSERT_GE(valid.levels.size(), 3u);

  {
    FlatHcdIndex::Data d = valid;
    d.parents.pop_back();
    ExpectAdoptCorruption(std::move(d), "section size mismatch");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.vertex_offsets[1] = d.vertex_offsets.back() + 10;  // non-monotone + OOB
    ExpectAdoptCorruption(std::move(d), "offsets not monotone");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.subtree_nodes[0] = static_cast<TreeNodeId>(d.levels.size()) + 1;
    ExpectAdoptCorruption(std::move(d), "subtree out of range");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.parents[1] = 2;  // parent after child in preorder
    ExpectAdoptCorruption(std::move(d), "preorder inversion");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.levels[0] = d.levels[1] + 1;  // parent level >= child level
    ExpectAdoptCorruption(std::move(d), "level inversion");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.tid[d.vertices.front()] = static_cast<TreeNodeId>(d.levels.size()) + 7;
    ExpectAdoptCorruption(std::move(d), "tid out of range");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.vertices[0] = d.num_vertices + 1;
    ExpectAdoptCorruption(std::move(d), "vertex id out of range");
  }
  {
    FlatHcdIndex::Data d = valid;
    std::swap(d.desc_level_order[0],
              d.desc_level_order[d.desc_level_order.size() - 1]);
    ExpectAdoptCorruption(std::move(d), "level order not canonical");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.roots[0] = 1;
    ExpectAdoptCorruption(std::move(d), "roots array mismatch");
  }
  {
    FlatHcdIndex::Data d = valid;
    // Break the children <-> subtree bijection without touching parents.
    d.children[0] = d.children.size() > 1 ? d.children[1] : d.children[0] + 1;
    ExpectAdoptCorruption(std::move(d), "children not at boundaries");
  }
  {
    FlatHcdIndex::Data d = valid;
    // An intermediate offset past num_nodes passes the front/back check but
    // must be rejected before it indexes desc_level_order out of bounds.
    const uint32_t num_nodes = static_cast<uint32_t>(d.levels.size());
    d.level_group_offsets = {0, num_nodes + 0xFFFFFF, num_nodes};
    ExpectAdoptCorruption(std::move(d), "level group offset out of range");
  }
  {
    // Worst case for the offset validation: a single-level index, so every
    // in-range prefix of the oversized group is level-homogeneous and
    // nothing but the upfront offset check stands between Adopt and reading
    // desc_level_order far past its end (ASan-visible without the fix).
    FlatHcdIndex::Data d;
    d.num_vertices = 0;
    d.levels = {0};
    d.parents = {kInvalidNode};
    d.subtree_nodes = {1};
    d.child_offsets = {0, 0};
    d.vertex_offsets = {0, 0};
    d.roots = {0};
    d.desc_level_order = {0};
    d.level_group_offsets = {0, 0x01000000u, 1};
    ExpectAdoptCorruption(std::move(d), "offset past single-level order");
  }
  {
    FlatHcdIndex::Data d = valid;
    // A vertex duplicated inside one span while another vertex of the same
    // span goes missing: every slot's tid still matches and the placed
    // totals still balance, so only per-vertex tracking catches it.
    size_t t = 0;
    while (t < d.levels.size() &&
           d.vertex_offsets[t + 1] - d.vertex_offsets[t] < 2) {
      ++t;
    }
    ASSERT_LT(t, d.levels.size()) << "fixture needs a node with >= 2 vertices";
    d.vertices[d.vertex_offsets[t] + 1] = d.vertices[d.vertex_offsets[t]];
    ExpectAdoptCorruption(std::move(d), "duplicate vertex placement");
  }
}

// ---------------------------------------------------------------------------
// v2 snapshots: bit-identical round trip, v1 migration, corrupt files.

std::vector<char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
  std::rewind(f);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(FlatIndexSnapshot, V2RoundTripIsBitIdentical) {
  Graph g = RMatGraph500(9, 4000, 23);
  CoreDecomposition cd = PkcCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(PhcdBuild(g, cd));

  const std::string path1 = ::testing::TempDir() + "/flat_rt1.bin";
  const std::string path2 = ::testing::TempDir() + "/flat_rt2.bin";
  ASSERT_TRUE(SaveFlatIndex(flat, path1).ok());
  FlatHcdIndex loaded;
  ASSERT_TRUE(LoadFlatIndex(path1, &loaded).ok());
  EXPECT_TRUE(HcdEquals(flat, loaded));
  EXPECT_EQ(loaded.data().subtree_nodes, flat.data().subtree_nodes);
  ASSERT_TRUE(SaveFlatIndex(loaded, path2).ok());
  EXPECT_EQ(ReadAll(path1), ReadAll(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(FlatIndexSnapshot, V1MigratesThroughFreeze) {
  Graph g = PlantedForest({OnionSpec(4, 6), OnionSpec(6, 5)}, 31);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest forest = NaiveHcdBuild(g, cd);
  const std::string path = ::testing::TempDir() + "/flat_migrate.bin";
  ASSERT_TRUE(SaveForest(forest, path).ok());

  FlatHcdIndex migrated;
  ASSERT_TRUE(LoadFlatIndex(path, &migrated).ok());
  EXPECT_TRUE(HcdEquals(forest, migrated));
  // Migration produces the same index as freezing directly.
  const FlatHcdIndex direct = Freeze(forest);
  EXPECT_EQ(migrated.data().levels, direct.data().levels);
  EXPECT_EQ(migrated.data().vertices, direct.data().vertices);
  std::remove(path.c_str());
}

class FlatSnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    Graph g = PlantedHierarchy(BranchingSpec(2, 8, 2, 2, 4), 41);
    CoreDecomposition cd = BzCoreDecomposition(g);
    index_ = Freeze(NaiveHcdBuild(g, cd));
    path_ = ::testing::TempDir() + "/flat_corrupt.bin";
    ASSERT_TRUE(SaveFlatIndex(index_, path_).ok());
    bytes_ = ReadAll(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes` and expects Corruption from BOTH loaders: the copying
  /// fread path and the zero-copy mmap path share the header / size
  /// validation and the Adopt funnel, so every corruption fixture must be
  /// rejected identically by each.
  void ExpectCorrupt(const std::vector<char>& bytes, const char* what) {
    WriteAll(path_, bytes);
    FlatHcdIndex loaded;
    Status s = LoadFlatIndex(path_, &loaded);
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "read: " << what << ": " << s.ToString();
    FlatHcdIndex mapped;
    s = MapFlatIndex(path_, &mapped);
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "mmap: " << what << ": " << s.ToString();
  }

  uint64_t HeaderWord(size_t i) const {
    uint64_t w;
    std::memcpy(&w, bytes_.data() + i * sizeof(uint64_t), sizeof(w));
    return w;
  }

  std::vector<char> WithHeaderWord(size_t i, uint64_t value) const {
    std::vector<char> bytes = bytes_;
    std::memcpy(bytes.data() + i * sizeof(uint64_t), &value, sizeof(value));
    return bytes;
  }

  FlatHcdIndex index_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(FlatSnapshotCorruption, Truncation) {
  std::vector<char> bytes = bytes_;
  bytes.resize(bytes.size() - 8);
  ExpectCorrupt(bytes, "dropped tail");
  bytes.resize(32);  // mid-header
  ExpectCorrupt(bytes, "mid-header truncation");
}

TEST_F(FlatSnapshotCorruption, BadMagic) {
  ExpectCorrupt(WithHeaderWord(0, 0x4242424242424242ULL), "bad magic");
}

TEST_F(FlatSnapshotCorruption, HeaderCountsDisagreeWithFileSize) {
  // Each tampered count changes the expected file size (or trips the
  // header plausibility checks) and must be rejected before allocation.
  ExpectCorrupt(WithHeaderWord(2, HeaderWord(2) + 1), "num_nodes + 1");
  ExpectCorrupt(WithHeaderWord(5, HeaderWord(5) + 1), "num_placed + 1");
  ExpectCorrupt(WithHeaderWord(3, HeaderWord(3) + 1), "num_roots + 1");
  ExpectCorrupt(WithHeaderWord(2, 1ULL << 40), "absurd num_nodes");
  ExpectCorrupt(WithHeaderWord(7, 1), "nonzero reserved word");
}

TEST_F(FlatSnapshotCorruption, TamperedSectionsFailAdopt) {
  const uint64_t num_nodes = HeaderWord(2);
  auto padded = [](uint64_t count) {
    return (count * sizeof(uint32_t) + 7) / 8 * 8;
  };
  const size_t header_bytes = 8 * sizeof(uint64_t);

  {
    // parents[1] (section 2, element 1): point it at a later node —
    // preorder inversion.
    std::vector<char> bytes = bytes_;
    const size_t off = header_bytes + padded(num_nodes) + 1 * sizeof(uint32_t);
    const uint32_t bad_parent = 2;
    std::memcpy(bytes.data() + off, &bad_parent, sizeof(bad_parent));
    ExpectCorrupt(bytes, "preorder inversion");
  }
  {
    // tid[0] (the 8th section): out-of-range node id. Sections before tid
    // are levels, parents, subtree_nodes, child_offsets, children,
    // vertex_offsets, vertices.
    std::vector<char> bytes = bytes_;
    const size_t tid_off = header_bytes + 3 * padded(num_nodes) +
                           padded(num_nodes + 1) + padded(HeaderWord(4)) +
                           padded(num_nodes + 1) + padded(HeaderWord(5));
    const uint32_t bad_tid = static_cast<uint32_t>(num_nodes) + 9;
    std::memcpy(bytes.data() + tid_off, &bad_tid, sizeof(bad_tid));
    ExpectCorrupt(bytes, "tid out of range");
  }
  {
    // level_group_offsets[1] (the 10th section) hoisted far past num_nodes:
    // front/back entries and the file size are untouched, so the snapshot
    // passes every header check and the upfront offset validation in Adopt
    // is what rejects it.
    ASSERT_GE(HeaderWord(6), 2u) << "fixture needs >= 2 level groups";
    std::vector<char> bytes = bytes_;
    const size_t group_off = header_bytes + 4 * padded(num_nodes) +
                             2 * padded(num_nodes + 1) +
                             padded(HeaderWord(4)) + padded(HeaderWord(5)) +
                             padded(HeaderWord(1)) + 1 * sizeof(uint32_t);
    const uint32_t bad_offset = static_cast<uint32_t>(num_nodes) + 0xFFFFFF;
    std::memcpy(bytes.data() + group_off, &bad_offset, sizeof(bad_offset));
    ExpectCorrupt(bytes, "level group offset out of range");
  }
}

// ---------------------------------------------------------------------------
// Element domains: kind-tagged freezes and Adopt's element validation.

FlatHcdIndex FreezeTrussOf(const Graph& g) {
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  return FreezeTruss(g, index, forest);
}

FlatHcdIndex FreezeNucleusOf(const Graph& g) {
  EdgeIndexer eidx = BuildEdgeIndexer(g);
  TriangleIndexer tidx = BuildTriangleIndexer(g, eidx);
  NucleusDecomposition nd = PeelNucleusDecomposition(g, eidx, tidx);
  NucleusForest forest = BuildNucleusHierarchy(g, eidx, tidx, nd);
  return FreezeNucleus(g, tidx, forest);
}

TEST(FlatIndexElements, TrussFreezeCarriesKindAndMembers) {
  Graph g = PlantedHierarchy(OnionSpec(5, 8), 3);
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  const FlatHcdIndex flat = FreezeTruss(g, index, forest);

  EXPECT_EQ(flat.kind(), HierarchyKind::kTruss);
  EXPECT_EQ(flat.arity(), 2u);
  EXPECT_EQ(flat.NumElements(), index.NumEdges());
  EXPECT_EQ(flat.NumGraphVertices(), g.NumVertices());
  for (VertexId e = 0; e < flat.NumElements(); ++e) {
    const std::span<const VertexId> m = flat.ElementMembers(e);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[0], index.edges[e].first);
    EXPECT_EQ(m[1], index.edges[e].second);
    EXPECT_LT(m[0], m[1]);
  }
  // The tree itself is the plain Freeze of the same forest.
  EXPECT_TRUE(HcdEquals(forest, flat));
  FlatHcdIndex adopted;
  ASSERT_TRUE(FlatHcdIndex::Adopt(flat.data(), &adopted).ok());
  EXPECT_EQ(adopted.kind(), HierarchyKind::kTruss);
}

TEST(FlatIndexElements, NucleusFreezeCarriesKindAndMembers) {
  Graph g = PlantedHierarchy(OnionSpec(5, 7), 13);
  EdgeIndexer eidx = BuildEdgeIndexer(g);
  TriangleIndexer tidx = BuildTriangleIndexer(g, eidx);
  NucleusDecomposition nd = PeelNucleusDecomposition(g, eidx, tidx);
  NucleusForest forest = BuildNucleusHierarchy(g, eidx, tidx, nd);
  const FlatHcdIndex flat = FreezeNucleus(g, tidx, forest);

  EXPECT_EQ(flat.kind(), HierarchyKind::kNucleus);
  EXPECT_EQ(flat.arity(), 3u);
  EXPECT_EQ(flat.NumElements(), tidx.NumTriangles());
  EXPECT_EQ(flat.NumGraphVertices(), g.NumVertices());
  for (VertexId t = 0; t < flat.NumElements(); ++t) {
    const std::span<const VertexId> m = flat.ElementMembers(t);
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0], tidx.triangles[t][0]);
    EXPECT_EQ(m[1], tidx.triangles[t][1]);
    EXPECT_EQ(m[2], tidx.triangles[t][2]);
    EXPECT_LT(m[0], m[1]);
    EXPECT_LT(m[1], m[2]);
  }
  FlatHcdIndex adopted;
  ASSERT_TRUE(FlatHcdIndex::Adopt(flat.data(), &adopted).ok());
}

FlatHcdIndex::Data ValidTrussData() {
  return FreezeTrussOf(PlantedHierarchy(OnionSpec(5, 8), 3)).data();
}

TEST(FlatIndexAdopt, RejectsElementDomainViolations) {
  const FlatHcdIndex::Data valid = ValidTrussData();
  ASSERT_EQ(valid.kind, HierarchyKind::kTruss);
  ASSERT_GE(valid.element_members.size(), 4u);

  {
    FlatHcdIndex::Data d = valid;
    d.kind = static_cast<HierarchyKind>(7);
    ExpectAdoptCorruption(std::move(d), "invalid kind value");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.kind = HierarchyKind::kCore;  // core carries no members
    ExpectAdoptCorruption(std::move(d), "core with element members");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.kind = HierarchyKind::kNucleus;  // arity 3 vs 2*n members
    ExpectAdoptCorruption(std::move(d), "kind/member-count mismatch");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.element_members.pop_back();
    ExpectAdoptCorruption(std::move(d), "member count not arity*n");
  }
  {
    FlatHcdIndex::Data d = valid;
    d.element_members[0] = d.num_graph_vertices;  // out of graph range
    ExpectAdoptCorruption(std::move(d), "member out of graph range");
  }
  {
    FlatHcdIndex::Data d = valid;
    std::swap(d.element_members[0], d.element_members[1]);
    ExpectAdoptCorruption(std::move(d), "members not ascending");
  }
  // And the core-side invariants the extension added.
  {
    FlatHcdIndex::Data d = ValidData();
    d.element_members = {0, 1};
    ExpectAdoptCorruption(std::move(d), "core index with members");
  }
  {
    FlatHcdIndex::Data d = ValidData();
    d.num_graph_vertices = d.num_vertices + 1;
    ExpectAdoptCorruption(std::move(d), "core graph/element domain split");
  }
}

// ---------------------------------------------------------------------------
// v3 snapshots: bit-identical round trips, core stays v2, corrupt files.

void ExpectV3RoundTrip(const FlatHcdIndex& flat, const char* tag) {
  const std::string path1 =
      ::testing::TempDir() + "/flat_v3_" + tag + "_1.bin";
  const std::string path2 =
      ::testing::TempDir() + "/flat_v3_" + tag + "_2.bin";
  ASSERT_TRUE(SaveFlatIndex(flat, path1).ok());
  FlatHcdIndex loaded;
  ASSERT_TRUE(LoadFlatIndex(path1, &loaded).ok());
  EXPECT_TRUE(HcdEquals(flat, loaded));
  EXPECT_EQ(loaded.kind(), flat.kind());
  EXPECT_EQ(loaded.NumGraphVertices(), flat.NumGraphVertices());
  EXPECT_EQ(loaded.data().element_members, flat.data().element_members);
  ASSERT_TRUE(SaveFlatIndex(loaded, path2).ok());
  EXPECT_EQ(ReadAll(path1), ReadAll(path2));
  // A v3 file is not a builder forest.
  HcdForest forest;
  EXPECT_EQ(LoadForest(path1, &forest).code(), StatusCode::kInvalidArgument);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(FlatIndexSnapshot, V3TrussRoundTripIsBitIdentical) {
  ExpectV3RoundTrip(FreezeTrussOf(RMatGraph500(8, 2000, 5)), "truss");
}

TEST(FlatIndexSnapshot, V3NucleusRoundTripIsBitIdentical) {
  ExpectV3RoundTrip(FreezeNucleusOf(PlantedHierarchy(OnionSpec(4, 7), 11)),
                    "nucleus");
}

TEST(FlatIndexSnapshot, CoreSnapshotsStayV2) {
  Graph g = PlantedHierarchy(OnionSpec(4, 6), 19);
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  const std::string path = ::testing::TempDir() + "/flat_still_v2.bin";
  ASSERT_TRUE(SaveFlatIndex(flat, path).ok());
  const std::vector<char> bytes = ReadAll(path);
  uint64_t magic = 0;
  ASSERT_GE(bytes.size(), sizeof(magic));
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  EXPECT_EQ(magic, 0x484344464f523032ULL);  // "HCDFOR02"
  std::remove(path.c_str());
}

class FlatSnapshotV3Corruption : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = FreezeTrussOf(PlantedHierarchy(OnionSpec(4, 7), 11));
    path_ = ::testing::TempDir() + "/flat_v3_corrupt.bin";
    ASSERT_TRUE(SaveFlatIndex(index_, path_).ok());
    bytes_ = ReadAll(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Rejection parity: both the copying and the mmap loader must refuse.
  void ExpectCorrupt(const std::vector<char>& bytes, const char* what) {
    WriteAll(path_, bytes);
    FlatHcdIndex loaded;
    Status s = LoadFlatIndex(path_, &loaded);
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "read: " << what << ": " << s.ToString();
    FlatHcdIndex mapped;
    s = MapFlatIndex(path_, &mapped);
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "mmap: " << what << ": " << s.ToString();
  }

  uint64_t HeaderWord(size_t i) const {
    uint64_t w;
    std::memcpy(&w, bytes_.data() + i * sizeof(uint64_t), sizeof(w));
    return w;
  }

  std::vector<char> WithHeaderWord(size_t i, uint64_t value) const {
    std::vector<char> bytes = bytes_;
    std::memcpy(bytes.data() + i * sizeof(uint64_t), &value, sizeof(value));
    return bytes;
  }

  FlatHcdIndex index_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(FlatSnapshotV3Corruption, WrongKindTag) {
  // v3 header word 1 is the kind. kCore is non-canonical in v3 (the
  // writer emits v2 for core), out-of-range values are garbage, and a
  // plausible-but-wrong kind disagrees with the member count (arity).
  ExpectCorrupt(WithHeaderWord(1, 0), "v3 tagged kCore");
  ExpectCorrupt(WithHeaderWord(1, 7), "kind out of range");
  ExpectCorrupt(WithHeaderWord(1, 0xFFFFFFFFFFFFFFFFULL), "kind garbage");
  ExpectCorrupt(WithHeaderWord(1, 2), "kind/arity mismatch");
}

TEST_F(FlatSnapshotV3Corruption, ElementCountAndGraphMismatch) {
  // num_element_members (word 9) must equal arity * n and match the file
  // size; num_graph_vertices (word 2) bounds every member id.
  ExpectCorrupt(WithHeaderWord(9, HeaderWord(9) + 1), "member count + 1");
  ExpectCorrupt(WithHeaderWord(9, HeaderWord(9) - 2), "member count - 2");
  ExpectCorrupt(WithHeaderWord(2, 1), "graph smaller than members");
  ExpectCorrupt(WithHeaderWord(10, 1), "nonzero reserved word");
  ExpectCorrupt(WithHeaderWord(11, 1), "nonzero reserved word 2");
}

TEST_F(FlatSnapshotV3Corruption, TruncatedElementSection) {
  std::vector<char> bytes = bytes_;
  bytes.resize(bytes.size() - 8);  // drop the tail of element_members
  ExpectCorrupt(bytes, "truncated element section");
  bytes.resize(12 * sizeof(uint64_t));  // header only
  ExpectCorrupt(bytes, "sections missing entirely");
  bytes.resize(40);  // mid-header
  ExpectCorrupt(bytes, "mid-header truncation");
}

TEST_F(FlatSnapshotV3Corruption, TamperedMembersFailAdopt) {
  // Swap the two endpoints of edge 0 in the trailing element section:
  // every header count and the file size stay valid, so only Adopt's
  // ascending-members check stands between the file and the serve path.
  const uint64_t num_members = HeaderWord(9);
  ASSERT_GE(num_members, 2u);
  std::vector<char> bytes = bytes_;
  const size_t padded_members =
      (num_members * sizeof(uint32_t) + 7) / 8 * 8;
  const size_t members_off = bytes.size() - padded_members;
  uint32_t a, b;
  std::memcpy(&a, bytes.data() + members_off, sizeof(a));
  std::memcpy(&b, bytes.data() + members_off + sizeof(a), sizeof(b));
  ASSERT_LT(a, b);
  std::memcpy(bytes.data() + members_off, &b, sizeof(b));
  std::memcpy(bytes.data() + members_off + sizeof(b), &a, sizeof(a));
  ExpectCorrupt(bytes, "members not ascending");
}

// ---------------------------------------------------------------------------
// Mapped snapshots: MapFlatIndex must be observably identical to
// LoadFlatIndex everywhere except storage ownership.

/// Saves `built`, loads it back through both loaders, and asserts the two
/// results are bit-identical: every section element-equal, queries agree,
/// and re-serializing the mapped index reproduces the input bytes.
void ExpectMapMatchesRead(const FlatHcdIndex& built, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/flat_map_" + tag + ".bin";
  ASSERT_TRUE(SaveFlatIndex(built, path).ok());

  FlatHcdIndex read_loaded;
  FlatHcdIndex mapped;
  ASSERT_TRUE(LoadFlatIndex(path, &read_loaded).ok()) << tag;
  ASSERT_TRUE(MapFlatIndex(path, &mapped).ok()) << tag;
  EXPECT_FALSE(read_loaded.mapped()) << tag;
  EXPECT_TRUE(mapped.mapped()) << tag;

  const FlatHcdIndex::Data& a = read_loaded.data();
  const FlatHcdIndex::Data& b = mapped.data();
  EXPECT_EQ(a.kind, b.kind) << tag;
  EXPECT_EQ(a.num_vertices, b.num_vertices) << tag;
  EXPECT_EQ(a.num_graph_vertices, b.num_graph_vertices) << tag;
  EXPECT_EQ(a.element_members, b.element_members) << tag;
  EXPECT_EQ(a.levels, b.levels) << tag;
  EXPECT_EQ(a.parents, b.parents) << tag;
  EXPECT_EQ(a.subtree_nodes, b.subtree_nodes) << tag;
  EXPECT_EQ(a.child_offsets, b.child_offsets) << tag;
  EXPECT_EQ(a.children, b.children) << tag;
  EXPECT_EQ(a.vertex_offsets, b.vertex_offsets) << tag;
  EXPECT_EQ(a.vertices, b.vertices) << tag;
  EXPECT_EQ(a.tid, b.tid) << tag;
  EXPECT_EQ(a.desc_level_order, b.desc_level_order) << tag;
  EXPECT_EQ(a.level_group_offsets, b.level_group_offsets) << tag;
  EXPECT_EQ(a.roots, b.roots) << tag;
  EXPECT_TRUE(HcdEquals(read_loaded, mapped)) << tag;

  const std::string resaved = path + ".resaved";
  ASSERT_TRUE(SaveFlatIndex(mapped, resaved).ok()) << tag;
  EXPECT_EQ(ReadAll(path), ReadAll(resaved)) << tag;
  std::remove(resaved.c_str());
  std::remove(path.c_str());
}

class MappedSnapshotSuite
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(MappedSnapshotSuite, MapBitIdenticalToReadForEveryKind) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  ExpectMapMatchesRead(Freeze(NaiveHcdBuild(g, cd)),
                       std::string(GetParam().name) + "_core");
  ExpectMapMatchesRead(FreezeTrussOf(g),
                       std::string(GetParam().name) + "_truss");
  ExpectMapMatchesRead(FreezeNucleusOf(g),
                       std::string(GetParam().name) + "_nucleus");
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, MappedSnapshotSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return std::string(info.param.name);
    });

TEST(FlatSnapshotMapped, V1FallsBackToCopyingMigration) {
  // v1 files carry a builder stream, not flat sections — nothing to alias.
  // MapFlatIndex must transparently hand them to the copying migrator.
  Graph g = PlantedHierarchy(OnionSpec(4, 6), 7);
  HcdForest forest = NaiveHcdBuild(g, BzCoreDecomposition(g));
  const std::string path = ::testing::TempDir() + "/flat_map_v1.bin";
  ASSERT_TRUE(SaveForest(forest, path).ok());

  FlatHcdIndex migrated;
  ASSERT_TRUE(MapFlatIndex(path, &migrated).ok());
  EXPECT_FALSE(migrated.mapped());
  EXPECT_TRUE(HcdEquals(forest, migrated));
  std::remove(path.c_str());
}

TEST(FlatSnapshotMapped, SurvivesSourceFileUnlink) {
  // POSIX keeps mapped pages alive after the last directory entry goes;
  // a mapped index must stay fully queryable once the file is deleted.
  const Graph g = PlantedHierarchy(BranchingSpec(2, 6, 2, 2, 3), 9);
  const FlatHcdIndex built = Freeze(NaiveHcdBuild(g, BzCoreDecomposition(g)));
  const std::string path = ::testing::TempDir() + "/flat_map_unlink.bin";
  ASSERT_TRUE(SaveFlatIndex(built, path).ok());

  FlatHcdIndex mapped;
  ASSERT_TRUE(MapFlatIndex(path, &mapped).ok());
  ASSERT_EQ(std::remove(path.c_str()), 0);
  EXPECT_TRUE(HcdEquals(built, mapped));
}

TEST(FlatSnapshotMapped, ConcurrentReadersShareOneMapping) {
  // One mapping, many readers: traversals and vertex-span scans from
  // several threads against the same shared immutable pages. Runs under
  // TSan in CI; any write into the mapped region or unsynchronized
  // bookkeeping in ArrayRef/MappedFile shows up here.
  const Graph g = PlantedHierarchy(BranchingSpec(2, 8, 2, 2, 4), 29);
  const FlatHcdIndex built = Freeze(NaiveHcdBuild(g, BzCoreDecomposition(g)));
  const std::string path = ::testing::TempDir() + "/flat_map_threads.bin";
  ASSERT_TRUE(SaveFlatIndex(built, path).ok());

  auto mapped = std::make_shared<FlatHcdIndex>();
  ASSERT_TRUE(MapFlatIndex(path, mapped.get()).ok());
  ASSERT_TRUE(mapped->mapped());

  constexpr int kThreads = 4;
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([mapped, &checksum] {
      uint64_t local = 0;
      for (TreeNodeId node = 0; node < mapped->NumNodes(); ++node) {
        local += mapped->Level(node);
        for (const VertexId v : mapped->CoreVertices(node)) local += v;
      }
      for (VertexId v = 0; v < mapped->NumVertices(); ++v) {
        local += mapped->Tid(v);
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& r : readers) r.join();

  uint64_t expect = 0;
  for (TreeNodeId node = 0; node < built.NumNodes(); ++node) {
    expect += built.Level(node);
    for (const VertexId v : built.CoreVertices(node)) expect += v;
  }
  for (VertexId v = 0; v < built.NumVertices(); ++v) expect += built.Tid(v);
  EXPECT_EQ(checksum.load(), kThreads * expect);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcd
