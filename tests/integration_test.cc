#include <gtest/gtest.h>

#include <utility>

#include "core/core_decomposition.h"
#include "core/naive.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/lcps.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/serialize.h"
#include "hcd/validate.h"
#include "parallel/omp_utils.h"
#include "search/bks.h"
#include "search/densest.h"
#include "search/pbks.h"
#include "search/search_index.h"

namespace hcd {
namespace {

/// End-to-end: the parallel pipeline (PKC -> PHCD -> PBKS) and the serial
/// pipeline (BZ -> LCPS -> BKS) must produce identical decompositions,
/// hierarchies and scores on nontrivial graphs.
TEST(Integration, ParallelAndSerialPipelinesAgree) {
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"ba_large", BarabasiAlbert(3000, 5, 101)});
  cases.push_back({"rmat_large", RMatGraph500(12, 30000, 102)});
  cases.push_back({"gnm_large", ErdosRenyiGnm(2000, 12000, 103)});
  cases.push_back(
      {"planted_large", PlantedHierarchy(BranchingSpec(3, 15, 3, 3, 12), 104)});

  for (auto& tc : cases) {
    SCOPED_TRACE(tc.name);
    const Graph& g = tc.graph;

    CoreDecomposition serial_cd = BzCoreDecomposition(g);
    CoreDecomposition parallel_cd = PkcCoreDecomposition(g);
    ASSERT_EQ(serial_cd.coreness, parallel_cd.coreness);

    HcdForest serial_f = LcpsBuild(g, serial_cd);
    HcdForest parallel_f = PhcdBuild(g, parallel_cd);
    ASSERT_TRUE(ValidateHcd(g, serial_cd, serial_f).ok());
    ASSERT_TRUE(ValidateHcd(g, parallel_cd, parallel_f).ok());
    ASSERT_TRUE(HcdEquals(serial_f, parallel_f));

    const FlatHcdIndex serial_i = Freeze(std::move(serial_f));
    const FlatHcdIndex parallel_i = Freeze(std::move(parallel_f));
    ASSERT_TRUE(ValidateHcd(g, serial_cd, serial_i).ok());
    ASSERT_TRUE(HcdEquals(serial_i, parallel_i));

    for (Metric metric : kAllMetrics) {
      SCOPED_TRACE(MetricName(metric));
      SearchResult pbks = PbksSearch(g, parallel_cd, parallel_i, metric);
      SearchResult bks = BksSearch(g, serial_cd, serial_i, metric);
      ASSERT_EQ(pbks.scores.size(), bks.scores.size());
      for (size_t i = 0; i < pbks.scores.size(); ++i) {
        // Node ids coincide because the frozen indexes are structurally
        // equal and preorder numbering is deterministic; compare via scores
        // of the node holding the same representative vertex to stay robust.
        VertexId rep = parallel_i.Vertices(static_cast<TreeNodeId>(i)).front();
        TreeNodeId in_serial = serial_i.Tid(rep);
        EXPECT_NEAR(pbks.scores[i], bks.scores[in_serial], 1e-9);
      }
      EXPECT_NEAR(pbks.best_score, bks.best_score, 1e-9);
    }
  }
}

TEST(Integration, PipelineUnderVaryingThreads) {
  Graph g = BarabasiAlbert(1500, 4, 7);
  CoreDecomposition base_cd = PkcCoreDecomposition(g);
  HcdForest base_f = PhcdBuild(g, base_cd);
  const FlatHcdIndex base_i = Freeze(base_f);
  SearchResult base_r = PbksSearch(g, base_cd, base_i, Metric::kModularity);
  for (int threads : {1, 3, 8}) {
    ThreadCountGuard guard(threads);
    CoreDecomposition cd = PkcCoreDecomposition(g);
    EXPECT_EQ(cd.coreness, base_cd.coreness);
    HcdForest f = PhcdBuild(g, cd);
    EXPECT_TRUE(HcdEquals(f, base_f));
    const FlatHcdIndex flat = Freeze(std::move(f));
    EXPECT_TRUE(HcdEquals(flat, base_i));
    SearchResult r = PbksSearch(g, cd, flat, Metric::kModularity);
    EXPECT_EQ(r.scores, base_r.scores);
  }
}

TEST(Integration, SaveLoadSearchRoundTrip) {
  Graph g = RMatGraph500(10, 8000, 55);
  CoreDecomposition cd = PkcCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(PhcdBuild(g, cd));
  const std::string path = ::testing::TempDir() + "/integration_forest.bin";
  ASSERT_TRUE(SaveFlatIndex(flat, path).ok());
  FlatHcdIndex loaded;
  ASSERT_TRUE(LoadFlatIndex(path, &loaded).ok());
  SearchResult a = PbksSearch(g, cd, flat, Metric::kAverageDegree);
  SearchResult b = PbksSearch(g, cd, loaded, Metric::kAverageDegree);
  EXPECT_EQ(a.scores, b.scores);
  std::remove(path.c_str());
}

TEST(Integration, DensestPipelineOnSkewedGraph) {
  Graph g = BarabasiAlbert(2000, 6, 99);
  CoreDecomposition cd = PkcCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(PhcdBuild(g, cd));
  DenseSubgraph pbks = PbksDensest(g, cd, flat);
  DenseSubgraph coreapp = CoreAppDensest(g, cd);
  EXPECT_GE(pbks.average_degree, coreapp.average_degree - 1e-9);
  EXPECT_GE(pbks.average_degree, static_cast<double>(cd.k_max) - 1e-9);
  EXPECT_FALSE(pbks.vertices.empty());
}

}  // namespace
}  // namespace hcd
