// Round-trips every hcd_cli subcommand's --json output through the strict
// JSON parser in tests/test_util.h. The parser rejects bare `inf`/`nan`
// tokens and trailing garbage, so this is the regression net for the
// ratio-guard bugs: a degenerate run (zero wall time, zero queries) must
// emit 0, never `"qps":inf`.
//
// The CLI binary's path arrives via the HCD_CLI_BIN environment variable
// (set by the ctest registration from $<TARGET_FILE:hcd_cli>); the whole
// suite is skipped when it is absent so the test target still builds and
// runs standalone.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace {

using hcd::testing::JsonValue;
using hcd::testing::ParseJson;

const char* CliBin() { return std::getenv("HCD_CLI_BIN"); }

std::string WorkDir() {
  const char* base = std::getenv("TMPDIR");
  std::string dir = (base != nullptr && base[0] != '\0') ? base : "/tmp";
  dir += "/hcd_cli_json_test";
  return dir;
}

/// Runs `hcd_cli <args>`, captures stdout, and requires exit status 0.
std::string RunCli(const std::string& args) {
  const std::string command = std::string(CliBin()) + " " + args;
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return "";
  std::string out;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.append(buffer, n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << command << "\n--- output ---\n" << out;
  return out;
}

/// The JSON document a command emitted: its last non-empty stdout line.
/// (Commands in --json mode print exactly one object as the final line;
/// anything after it would be trailing garbage and fail here.)
std::string LastLine(const std::string& out) {
  size_t end = out.size();
  while (end > 0 && (out[end - 1] == '\n' || out[end - 1] == '\r')) --end;
  const size_t start = out.find_last_of('\n', end == 0 ? 0 : end - 1);
  return out.substr(start == std::string::npos ? 0 : start + 1,
                    end - (start == std::string::npos ? 0 : start + 1));
}

/// Runs the command and strictly parses its JSON line. The returned
/// object is the parsed document; the `command` field must match.
JsonValue RunAndParse(const std::string& args, const std::string& command) {
  const std::string out = RunCli(args + " --json");
  const std::string line = LastLine(out);
  JsonValue doc;
  EXPECT_TRUE(ParseJson(line, &doc))
      << "not strict JSON from `" << args << " --json`:\n" << line;
  const JsonValue* name = doc.Find("command");
  EXPECT_NE(name, nullptr) << line;
  if (name != nullptr) {
    EXPECT_EQ(name->str, command) << line;
  }
  return doc;
}

class CliJsonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (CliBin() == nullptr) return;
    const std::string dir = WorkDir();
    std::system(("mkdir -p " + dir).c_str());
    bin_path_ = dir + "/g.bin";
    txt_path_ = dir + "/g.txt";
    // One binary graph for every command, one text graph for convert.
    RunCli("gen gnm " + bin_path_ + " 400 1200 7");
    RunCli("gen gnm " + txt_path_ + " 120 300 3");
  }

  void SetUp() override {
    if (CliBin() == nullptr) {
      GTEST_SKIP() << "HCD_CLI_BIN not set; run under ctest";
    }
  }

  static std::string bin_path_;
  static std::string txt_path_;
};

std::string CliJsonTest::bin_path_;
std::string CliJsonTest::txt_path_;

TEST_F(CliJsonTest, GenAndConvert) {
  const JsonValue gen =
      RunAndParse("gen gnm " + WorkDir() + "/g2.bin 100 250 5", "gen");
  const JsonValue* graph = gen.Find("graph");
  ASSERT_NE(graph, nullptr);
  const JsonValue* n = graph->Find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->number, 100.0);
  RunAndParse("convert " + txt_path_ + " " + WorkDir() + "/g3.bin", "convert");
}

TEST_F(CliJsonTest, EngineCommands) {
  RunAndParse("stats " + bin_path_, "stats");
  RunAndParse("build " + bin_path_ + " " + WorkDir() + "/g.forest", "build");
  RunAndParse("search " + bin_path_ + " conductance", "search");
  RunAndParse("export " + bin_path_ + " " + WorkDir() + "/g.dot", "export");
  RunAndParse("bestk " + bin_path_ + " average-degree", "bestk");
  RunAndParse("truss " + bin_path_, "truss");
  RunAndParse("influential " + bin_path_ + " 3 2", "influential");
}

TEST_F(CliJsonTest, QueryBenchRatiosStayFinite) {
  const JsonValue doc = RunAndParse(
      "query-bench " + bin_path_ + " --query-threads=2 --queries=60",
      "query-bench");
  const JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* qps = result->Find("qps");
  ASSERT_NE(qps, nullptr);
  EXPECT_GE(qps->number, 0.0);  // the strict parser already rejected inf/nan
}

TEST_F(CliJsonTest, ElementQueryBenchReportsKindAndStaysFinite) {
  // The element regime of query-bench: --hierarchy=truss runs the
  // ElementSearchIndex workload and tags its result with the kind.
  const JsonValue doc = RunAndParse(
      "query-bench " + bin_path_ +
          " --hierarchy=truss --query-threads=2 --queries=60",
      "query-bench");
  const JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* hierarchy = result->Find("hierarchy");
  ASSERT_NE(hierarchy, nullptr);
  EXPECT_EQ(hierarchy->str, "truss");
  const JsonValue* qps = result->Find("qps");
  ASSERT_NE(qps, nullptr);
  EXPECT_GE(qps->number, 0.0);
  const JsonValue* elements = result->Find("elements");
  ASSERT_NE(elements, nullptr);
  EXPECT_GT(elements->number, 0.0);
}

TEST_F(CliJsonTest, LiveBenchRatiosStayFinite) {
  const JsonValue doc = RunAndParse(
      "live-bench " + bin_path_ +
          " --query-threads=2 --batches=1 --batch-size=20 --seed=5",
      "live-bench");
  const JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_NE(result->Find("qps_retained"), nullptr);
}

TEST_F(CliJsonTest, ServeBenchReportsServerStats) {
  const JsonValue doc = RunAndParse(
      "serve-bench " + bin_path_ + " --connections=2 --queries=80",
      "serve-bench");
  const JsonValue* result = doc.Find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* hit_rate = result->Find("hit_rate");
  ASSERT_NE(hit_rate, nullptr);
  EXPECT_GE(hit_rate->number, 0.0);
  EXPECT_LE(hit_rate->number, 1.0);
  // Self-hosted mode reports the in-process server's counters inline.
  const JsonValue* server = result->Find("server");
  ASSERT_NE(server, nullptr);
  const JsonValue* requests = server->Find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->number, 80.0);
}

}  // namespace
