// Tests for the span tracer: recording semantics, thread attribution,
// Chrome JSON export, the ScopedStage bridge, and the contract that the
// disabled path performs no allocation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "common/trace.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

// Allocation counter for the no-allocation contract test. Interposing the
// global operator new in the test binary counts every heap allocation made
// anywhere in the process, so bracketing a code region with readings proves
// it allocation-free.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hcd {
namespace {

using hcd::testing::JsonValue;
using hcd::testing::ParseJson;

TEST(Tracer, RecordsSpansWithExplicitTracer) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    outer.AddArg("items", 7);
    { ScopedSpan inner(&tracer, "inner"); }
  }
  const std::vector<TraceSpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded at completion, so the nested span lands first.
  EXPECT_EQ(spans[0].span.name, "inner");
  EXPECT_EQ(spans[1].span.name, "outer");
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  // The inner span lies within the outer one on the tracer's timeline.
  const TraceSpan& inner = spans[0].span;
  const TraceSpan& outer = spans[1].span;
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].key, "items");
  EXPECT_EQ(outer.args[0].value, 7u);
  EXPECT_FALSE(outer.args[0].is_text);
}

TEST(Tracer, InstallPublishesAndUninstallClears) {
  EXPECT_EQ(Tracer::Current(), nullptr);
  {
    Tracer tracer;
    tracer.Install();
    EXPECT_EQ(Tracer::Current(), &tracer);
    { ScopedSpan span("installed"); }
    tracer.Uninstall();
    EXPECT_EQ(Tracer::Current(), nullptr);
    EXPECT_EQ(tracer.NumSpans(), 1u);
  }
  // After uninstall the instrumentation is inert again.
  { ScopedSpan span("not-recorded"); }
  EXPECT_EQ(Tracer::Current(), nullptr);
}

TEST(Tracer, DisabledPathDoesNotAllocate) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  ASSERT_EQ(MetricsRegistry::Current(), nullptr);
  const uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("disabled");
    span.AddArg("i", static_cast<uint64_t>(i));
    span.AddArg("name", "text");
    ScopedStage stage(nullptr, "disabled-stage");
    stage.AddCounter("i", static_cast<uint64_t>(i));
  }
  const uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after, before) << "disabled instrumentation must not allocate";
}

TEST(Tracer, ThreadsGetDistinctTraceIds) {
  Tracer tracer;
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, t] {
      for (int i = 0; i <= t; ++i) {
        ScopedSpan span(&tracer, "work");
        span.AddArg("thread", static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  EXPECT_EQ(tracer.NumThreadsSeen(), static_cast<size_t>(kThreads));
  const std::vector<TraceSpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 1u + 2 + 3 + 4);
  std::vector<uint32_t> tids;
  for (const TraceSpanRecord& r : spans) tids.push_back(r.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST(Tracer, RecordsInsideOpenMpRegions) {
  Tracer tracer;
  tracer.Install();
  {
    ThreadCountGuard guard(3);
    ParallelFor(0, 64, [&](int i) {
      ScopedSpan span("omp.item");
      span.AddArg("i", static_cast<uint64_t>(i));
    });
  }
  tracer.Uninstall();
  EXPECT_EQ(tracer.NumSpans(), 64u);
  EXPECT_GE(tracer.NumThreadsSeen(), 1u);
}

TEST(Tracer, FullBufferDropsAndCounts) {
  Tracer tracer(/*max_spans_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span(&tracer, "capped");
  }
  EXPECT_EQ(tracer.NumSpans(), 4u);
  EXPECT_EQ(tracer.TotalDropped(), 6u);
}

/// Dropped-span accounting reaches the metrics registry exactly once per
/// drop: Drain (and PublishDroppedSpans directly) push only the delta
/// since the previous publish, so repeated exports never double-count.
TEST(Tracer, DrainPublishesDropCountsOnceToTheRegistry) {
  MetricsRegistry registry;
  registry.Install();
  {
    Tracer tracer(/*max_spans_per_thread=*/4);
    for (int i = 0; i < 10; ++i) {
      ScopedSpan span(&tracer, "capped");
    }
    EXPECT_EQ(tracer.TotalDropped(), 6u);

    Counter* dropped = registry.GetCounter("hcd_trace_dropped_spans_total");
    EXPECT_EQ(dropped->Value(), 0u);  // nothing published yet
    tracer.Drain();
    EXPECT_EQ(dropped->Value(), 6u);
    // A second drain with no new drops publishes nothing more.
    tracer.Drain();
    EXPECT_EQ(dropped->Value(), 6u);

    // New drops after the drain publish only their own delta. The buffer
    // kept its 4-slot capacity and Drain emptied it, so of 5 spans one is
    // dropped.
    for (int i = 0; i < 5; ++i) {
      ScopedSpan span(&tracer, "capped-again");
    }
    tracer.PublishDroppedSpans();
    EXPECT_EQ(dropped->Value(), 7u);
    EXPECT_EQ(tracer.TotalDropped(), 7u);
  }
  registry.Uninstall();
}

/// Without a registry the publish is a no-op that does NOT advance the
/// watermark: drops that happened while no registry was installed still
/// reach a registry installed later.
TEST(Tracer, DropsSurviveUntilARegistryExists) {
  Tracer tracer(/*max_spans_per_thread=*/2);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&tracer, "early");
  }
  tracer.PublishDroppedSpans();  // no registry: nothing to publish into
  MetricsRegistry registry;
  registry.Install();
  tracer.PublishDroppedSpans();
  EXPECT_EQ(registry.GetCounter("hcd_trace_dropped_spans_total")->Value(),
            3u);
  registry.Uninstall();
}

TEST(Tracer, DrainResetsButKeepsRecording) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "one"); }
  { ScopedSpan span(&tracer, "two"); }
  std::vector<TraceSpanRecord> drained = tracer.Drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(tracer.NumSpans(), 0u);
  { ScopedSpan span(&tracer, "three"); }
  drained = tracer.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].span.name, "three");
}

/// Chrome JSON export parses as strict JSON, and every event carries the
/// exact ts/dur/tid of the span it was rendered from (µs with ns decimals).
TEST(Tracer, ChromeJsonRoundTripsSpans) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "na\"me with \\ and \nnewline");
    span.AddArg("count", 42);
    span.AddArg("label", "tri\"cky\\text");
  }
  { ScopedSpan span(&tracer, "plain"); }
  const std::vector<TraceSpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 2u);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(tracer.ToChromeJson(), &doc));
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ns");
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), spans.size());

  for (size_t i = 0; i < spans.size(); ++i) {
    const JsonValue& event = events->array[i];
    EXPECT_EQ(event.Find("name")->str, spans[i].span.name);
    EXPECT_EQ(event.Find("ph")->str, "X");
    EXPECT_EQ(event.Find("cat")->str, "hcd");
    EXPECT_EQ(static_cast<uint32_t>(event.Find("tid")->number),
              spans[i].tid);
    // ts/dur are microseconds with three decimals; equality in ns after
    // scaling is exact for the magnitudes a test produces.
    EXPECT_DOUBLE_EQ(event.Find("ts")->number * 1000.0,
                     static_cast<double>(spans[i].span.ts_ns));
    EXPECT_DOUBLE_EQ(event.Find("dur")->number * 1000.0,
                     static_cast<double>(spans[i].span.dur_ns));
  }
  const JsonValue* args = events->array[0].Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("count")->number, 42.0);
  EXPECT_EQ(args->Find("label")->str, "tri\"cky\\text");
}

TEST(Tracer, WriteChromeJsonFileParses) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "file-span"); }
  const std::string path =
      ::testing::TempDir() + "/hcd_trace_roundtrip.json";
  ASSERT_TRUE(tracer.WriteChromeJson(path).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  ASSERT_TRUE(ParseJson(buffer.str(), &doc));
  ASSERT_EQ(doc.Find("traceEvents")->array.size(), 1u);
  EXPECT_EQ(doc.Find("traceEvents")->array[0].Find("name")->str, "file-span");
  std::remove(path.c_str());
}

TEST(Tracer, WriteChromeJsonReportsIoError) {
  Tracer tracer;
  EXPECT_FALSE(tracer.WriteChromeJson("/nonexistent-dir/trace.json").ok());
}

/// The ScopedStage bridge feeds all three backends from one scope: the
/// sink gets a StageRecord, the tracer a span whose args are the stage
/// counters, and the registry the stage histogram/counter family.
TEST(ScopedStageBridge, ReportsToSinkTracerAndRegistry) {
  Tracer tracer;
  MetricsRegistry registry;
  StageTelemetry sink;
  tracer.Install();
  registry.Install();
  {
    ScopedStage stage(&sink, "bridged");
    stage.AddCounter("widgets", 5);
  }
  registry.Uninstall();
  tracer.Uninstall();

  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].stage, "bridged");

  const std::vector<TraceSpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span.name, "bridged");
  ASSERT_EQ(spans[0].span.args.size(), 1u);
  EXPECT_EQ(spans[0].span.args[0].key, "widgets");
  EXPECT_EQ(spans[0].span.args[0].value, 5u);

  Histogram* hist =
      registry.GetHistogram("hcd_stage_seconds", "", {{"stage", "bridged"}});
  EXPECT_EQ(hist->TotalCount(), 1u);
  Counter* runs =
      registry.GetCounter("hcd_stage_runs_total", "", {{"stage", "bridged"}});
  EXPECT_EQ(runs->Value(), 1u);
  Counter* widgets =
      registry.GetCounter("hcd_stage_counter_total", "",
                          {{"stage", "bridged"}, {"counter", "widgets"}});
  EXPECT_EQ(widgets->Value(), 5u);
}

/// Without a sink, a tracer alone still activates the stage (spans appear),
/// and with nothing at all the stage records nowhere.
TEST(ScopedStageBridge, TracerAloneActivatesStage) {
  Tracer tracer;
  tracer.Install();
  { ScopedStage stage(nullptr, "tracer-only"); }
  tracer.Uninstall();
  ASSERT_EQ(tracer.NumSpans(), 1u);
  EXPECT_EQ(tracer.CollectSpans()[0].span.name, "tracer-only");
}

}  // namespace
}  // namespace hcd
