// Tests for the serve phase: QuerySnapshot over a built engine. The
// headline test is the build/serve acceptance check — eight threads
// hammering one snapshot with every metric interleaved, each result
// bit-identical to the single-threaded PBKS baseline — and it is the test
// the ThreadSanitizer CI job runs to prove the serve path has no data
// races. Worker threads record mismatch counts instead of calling gtest
// macros (EXPECT_* is not thread-safe); the main thread asserts after the
// join.

#include "engine/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "search/pbks.h"
#include "search/search_index.h"

namespace hcd {
namespace {

constexpr size_t kMetricCount = std::size(kAllMetrics);

TEST(SnapshotTest, ConcurrentQueriesBitIdenticalToBaseline) {
  Graph g = RMatGraph500(10, 6000, 11);
  HcdEngine engine(&g);
  const QuerySnapshot snapshot = engine.Snapshot();

  // Single-threaded one-shot baseline, one result per metric.
  std::vector<SearchResult> baseline;
  baseline.reserve(kMetricCount);
  for (Metric metric : kAllMetrics) {
    baseline.push_back(PbksSearch(g, engine.Coreness(), engine.Flat(), metric));
  }

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 50;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&snapshot, &baseline, &mismatches, t] {
      SearchWorkspace ws;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        // Offset by the thread id so the metric mix is interleaved across
        // threads: at any instant different workers score different
        // metrics against the same shared snapshot.
        const size_t mi = (static_cast<size_t>(q) + t) % kMetricCount;
        const SearchHit hit = snapshot.Search(kAllMetrics[mi], &ws);
        const SearchResult& want = baseline[mi];
        if (hit.best_node != want.best_node) ++mismatches[t];
        // Bit-identical, not just approximately equal: compare the raw
        // representation of every double.
        if (std::memcmp(&hit.best_score, &want.best_score,
                        sizeof(double)) != 0) {
          ++mismatches[t];
        }
        if (ws.scores.size() != want.scores.size() ||
            std::memcmp(ws.scores.data(), want.scores.data(),
                        ws.scores.size() * sizeof(double)) != 0) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "worker " << t;
  }
}

TEST(SnapshotTest, WorkspaceReuseMatchesAllocatingOverload) {
  Graph g = RMatGraph500(9, 3000, 5);
  HcdEngine engine(&g);
  const QuerySnapshot snapshot = engine.Snapshot();
  SearchWorkspace ws;
  for (Metric metric : kAllMetrics) {
    const SearchHit hit = snapshot.Search(metric, &ws);
    const SearchResult full = snapshot.Search(metric);
    EXPECT_EQ(hit.best_node, full.best_node) << MetricName(metric);
    EXPECT_EQ(hit.best_score, full.best_score) << MetricName(metric);
    EXPECT_EQ(ws.scores, full.scores) << MetricName(metric);
    EXPECT_EQ(ws.scores.size(), snapshot.flat().NumNodes());
  }
  // Once warm, reuse never reallocates the scores buffer.
  const double* warm = ws.scores.data();
  snapshot.Search(Metric::kConductance, &ws);
  snapshot.Search(Metric::kClusteringCoefficient, &ws);
  EXPECT_EQ(ws.scores.data(), warm);
}

TEST(SnapshotTest, CoreVerticesRoundTrip) {
  Graph g = RMatGraph500(9, 3000, 7);
  HcdEngine engine(&g);
  const QuerySnapshot snapshot = engine.Snapshot();
  SearchWorkspace ws;
  const SearchHit hit = snapshot.Search(Metric::kAverageDegree, &ws);
  ASSERT_NE(hit.best_node, kInvalidNode);
  const auto vertices = snapshot.CoreVertices(hit.best_node);
  EXPECT_EQ(vertices.size(), snapshot.flat().CoreSize(hit.best_node));
  EXPECT_FALSE(vertices.empty());
  EXPECT_TRUE(snapshot.CoreVertices(kInvalidNode).empty());
}

TEST(SnapshotTest, SnapshotsShareTheEngineState) {
  HcdEngine engine(RMatGraph500(8, 2000, 3));
  const QuerySnapshot a = engine.Snapshot();
  const QuerySnapshot b = engine.Snapshot();
  // Snapshot() memoizes through the engine: no stage is rebuilt, and every
  // copy points at the same underlying state.
  EXPECT_EQ(&a.search_index(), &engine.Searcher());
  EXPECT_EQ(&a.search_index(), &b.search_index());
  EXPECT_EQ(&a.flat(), &b.flat());
  EXPECT_EQ(&a.coreness(), &b.coreness());
  EXPECT_EQ(&a.graph(), &engine.graph());
  const QuerySnapshot c = a;  // copies are shallow
  EXPECT_EQ(&c.flat(), &a.flat());
}

TEST(SnapshotTest, ConcurrentTelemetrySinkRecordsEveryQuery) {
  Graph g = RMatGraph500(8, 2000, 3);
  HcdEngine engine(&g);
  const QuerySnapshot snapshot = engine.Snapshot();
  StageTelemetry telemetry;
  ConcurrentTelemetrySink sink(&telemetry);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&snapshot, &sink, t] {
      SearchWorkspace ws;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const size_t mi = (static_cast<size_t>(q) + t) % kMetricCount;
        snapshot.Search(kAllMetrics[mi], &ws, &sink);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  // The mutexed decorator lost no record to the concurrency.
  EXPECT_EQ(telemetry.CountStage("search.score"),
            static_cast<size_t>(kThreads) * kQueriesPerThread);
}

}  // namespace
}  // namespace hcd
