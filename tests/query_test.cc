#include <gtest/gtest.h>

#include <algorithm>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/local_core_search.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/query.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

TEST(Query, PaperFigure1) {
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = PhcdBuild(g, cd);

  // Vertex 0 (octahedron): in the 4-core (6 vertices), the 3-core S3.1
  // (9 vertices) and the whole 2-core.
  EXPECT_EQ(KCoreContaining(f, 0, 4).size(), 6u);
  EXPECT_EQ(KCoreContaining(f, 0, 3).size(), 9u);
  EXPECT_EQ(KCoreContaining(f, 0, 2).size(), 16u);
  EXPECT_TRUE(KCoreContaining(f, 0, 5).empty());

  // Vertex 9 (4-clique S3.2): its 3-core has 4 vertices.
  EXPECT_EQ(KCoreContaining(f, 9, 3).size(), 4u);
  // Vertex 13 (2-shell) is in no 3-core.
  EXPECT_TRUE(KCoreContaining(f, 13, 3).empty());

  EXPECT_EQ(CorenessOf(f, 0), 4u);
  EXPECT_EQ(CorenessOf(f, 13), 2u);

  // 0 and 9 share the 2-core but no 3-core.
  EXPECT_TRUE(InSameKCore(f, 0, 9, 2));
  EXPECT_FALSE(InSameKCore(f, 0, 9, 3));
  EXPECT_TRUE(InSameKCore(f, 0, 6, 3));
}

TEST(Query, MatchesLocalCoreSearchOnSuite) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    if (tc.graph.NumVertices() == 0) continue;
    SCOPED_TRACE(tc.name);
    const Graph& g = tc.graph;
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest f = NaiveHcdBuild(g, cd);
    // For a sample of vertices, the index answer at k = c(v) must equal the
    // BFS-based local core search.
    for (VertexId v = 0; v < g.NumVertices();
         v += std::max<VertexId>(1, g.NumVertices() / 17)) {
      std::vector<VertexId> via_index =
          KCoreContaining(f, v, cd.coreness[v]);
      std::vector<VertexId> via_bfs = LocalCoreSearch(g, cd, v);
      std::sort(via_index.begin(), via_index.end());
      std::sort(via_bfs.begin(), via_bfs.end());
      EXPECT_EQ(via_index, via_bfs) << "vertex " << v;
    }
  }
}

TEST(Query, AncestorWalkLevels) {
  Graph g = PlantedHierarchy(OnionSpec(8, 6), 2);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = PhcdBuild(g, cd);
  // A deepest vertex is in every k-core for k = 1..8, each strictly larger.
  VertexId deep = 0;
  ASSERT_EQ(cd.coreness[deep], 8u);
  size_t prev = 0;
  for (uint32_t k = 8; k >= 1; --k) {
    auto core = KCoreContaining(f, deep, k);
    EXPECT_GT(core.size(), prev);
    prev = core.size();
  }
  EXPECT_EQ(prev, g.NumVertices());
}

}  // namespace
}  // namespace hcd
