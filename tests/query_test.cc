#include <gtest/gtest.h>

#include <algorithm>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/local_core_search.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/query.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

TEST(Query, PaperFigure1) {
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = PhcdBuild(g, cd);

  // Vertex 0 (octahedron): in the 4-core (6 vertices), the 3-core S3.1
  // (9 vertices) and the whole 2-core.
  EXPECT_EQ(KCoreContaining(f, 0, 4).size(), 6u);
  EXPECT_EQ(KCoreContaining(f, 0, 3).size(), 9u);
  EXPECT_EQ(KCoreContaining(f, 0, 2).size(), 16u);
  EXPECT_TRUE(KCoreContaining(f, 0, 5).empty());

  // Vertex 9 (4-clique S3.2): its 3-core has 4 vertices.
  EXPECT_EQ(KCoreContaining(f, 9, 3).size(), 4u);
  // Vertex 13 (2-shell) is in no 3-core.
  EXPECT_TRUE(KCoreContaining(f, 13, 3).empty());

  EXPECT_EQ(CorenessOf(f, 0), 4u);
  EXPECT_EQ(CorenessOf(f, 13), 2u);

  // 0 and 9 share the 2-core but no 3-core.
  EXPECT_TRUE(InSameKCore(f, 0, 9, 2));
  EXPECT_FALSE(InSameKCore(f, 0, 9, 3));
  EXPECT_TRUE(InSameKCore(f, 0, 6, 3));
}

TEST(Query, MatchesLocalCoreSearchOnSuite) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    if (tc.graph.NumVertices() == 0) continue;
    SCOPED_TRACE(tc.name);
    const Graph& g = tc.graph;
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest f = NaiveHcdBuild(g, cd);
    // For a sample of vertices, the index answer at k = c(v) must equal the
    // BFS-based local core search.
    for (VertexId v = 0; v < g.NumVertices();
         v += std::max<VertexId>(1, g.NumVertices() / 17)) {
      std::vector<VertexId> via_index =
          KCoreContaining(f, v, cd.coreness[v]);
      std::vector<VertexId> via_bfs = LocalCoreSearch(g, cd, v);
      std::sort(via_index.begin(), via_index.end());
      std::sort(via_bfs.begin(), via_bfs.end());
      EXPECT_EQ(via_index, via_bfs) << "vertex " << v;
    }
  }
}

TEST(FlatQuery, MatchesForestAnswersOnSuite) {
  // The frozen-index overloads must agree with the builder-forest queries
  // on every graph regime: same coreness, same membership node, same
  // k-core vertex set (as a set — Freeze renumbers nodes in preorder).
  for (const auto& tc : testing::StandardGraphSuite()) {
    SCOPED_TRACE(tc.name);
    const Graph& g = tc.graph;
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest f = PhcdBuild(g, cd);
    const FlatHcdIndex flat = Freeze(f);
    for (VertexId v = 0; v < g.NumVertices();
         v += std::max<VertexId>(1, g.NumVertices() / 13)) {
      EXPECT_EQ(CorenessOf(flat, v), CorenessOf(f, v)) << "vertex " << v;
      for (uint32_t k : {1u, 2u, CorenessOf(f, v), CorenessOf(f, v) + 1}) {
        const TreeNodeId node = NodeOfKCoreContaining(flat, v, k);
        std::vector<VertexId> via_forest = KCoreContaining(f, v, k);
        if (node == kInvalidNode) {
          EXPECT_TRUE(via_forest.empty()) << "vertex " << v << " k " << k;
          continue;
        }
        const std::span<const VertexId> members = flat.CoreVertices(node);
        std::vector<VertexId> via_flat(members.begin(), members.end());
        std::sort(via_flat.begin(), via_flat.end());
        std::sort(via_forest.begin(), via_forest.end());
        EXPECT_EQ(via_flat, via_forest) << "vertex " << v << " k " << k;
      }
    }
    // InSameKCore agrees on a few pairs.
    for (VertexId u = 0; u + 1 < g.NumVertices() && u < 8; ++u) {
      for (uint32_t k : {1u, 2u, 3u}) {
        EXPECT_EQ(InSameKCore(flat, u, u + 1, k), InSameKCore(f, u, u + 1, k))
            << "pair " << u << " k " << k;
      }
    }
  }
}

TEST(FlatQuery, ContainingAllIntersectsTheWalks) {
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(PhcdBuild(g, cd));

  // Empty input names no core.
  EXPECT_EQ(NodeOfKCoreContainingAll(flat, {}, 2), kInvalidNode);

  // A single vertex reduces to the one-vertex walk.
  const std::vector<VertexId> just_zero = {0};
  EXPECT_EQ(NodeOfKCoreContainingAll(flat, just_zero, 4),
            NodeOfKCoreContaining(flat, 0, 4));

  // Vertices 0 and 9 share the 2-core but no 3-core (paper figure 1).
  const std::vector<VertexId> zero_and_nine = {0, 9};
  const TreeNodeId shared2 = NodeOfKCoreContainingAll(flat, zero_and_nine, 2);
  ASSERT_NE(shared2, kInvalidNode);
  EXPECT_EQ(flat.Level(shared2), 2u);
  EXPECT_EQ(NodeOfKCoreContainingAll(flat, zero_and_nine, 3), kInvalidNode);

  // 0 and 6 share a 3-core; the shared node is the one both walks reach.
  const std::vector<VertexId> zero_and_six = {0, 6};
  const TreeNodeId shared3 = NodeOfKCoreContainingAll(flat, zero_and_six, 3);
  ASSERT_NE(shared3, kInvalidNode);
  EXPECT_EQ(shared3, NodeOfKCoreContaining(flat, 0, 3));
  EXPECT_EQ(shared3, NodeOfKCoreContaining(flat, 6, 3));

  // Any vertex outside every k-core poisons the whole set.
  const std::vector<VertexId> with_shell = {0, 13};
  EXPECT_EQ(NodeOfKCoreContainingAll(flat, with_shell, 3), kInvalidNode);
}

TEST(Query, AncestorWalkLevels) {
  Graph g = PlantedHierarchy(OnionSpec(8, 6), 2);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = PhcdBuild(g, cd);
  // A deepest vertex is in every k-core for k = 1..8, each strictly larger.
  VertexId deep = 0;
  ASSERT_EQ(cd.coreness[deep], 8u);
  size_t prev = 0;
  for (uint32_t k = 8; k >= 1; --k) {
    auto core = KCoreContaining(f, deep, k);
    EXPECT_GT(core.size(), prev);
    prev = core.size();
  }
  EXPECT_EQ(prev, g.NumVertices());
}

}  // namespace
}  // namespace hcd
