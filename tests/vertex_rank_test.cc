#include <gtest/gtest.h>

#include "core/core_decomposition.h"
#include "hcd/vertex_rank.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

void CheckVertexRank(const CoreDecomposition& cd, const VertexRank& vr) {
  const VertexId n = static_cast<VertexId>(cd.coreness.size());
  ASSERT_EQ(vr.sorted.size(), n);
  ASSERT_EQ(vr.rank.size(), n);
  ASSERT_EQ(vr.shell_start.size(), cd.k_max + 2);
  // sorted is a permutation ordered by (coreness, id); rank is its inverse.
  std::vector<bool> seen(n, false);
  for (VertexId i = 0; i < n; ++i) {
    VertexId v = vr.sorted[i];
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
    EXPECT_EQ(vr.rank[v], i);
    if (i > 0) {
      VertexId prev = vr.sorted[i - 1];
      bool ordered = cd.coreness[prev] < cd.coreness[v] ||
                     (cd.coreness[prev] == cd.coreness[v] && prev < v);
      EXPECT_TRUE(ordered) << "position " << i;
    }
  }
  // Shell slices contain exactly the vertices of that coreness.
  for (uint32_t k = 0; k <= cd.k_max; ++k) {
    for (VertexId v : vr.Shell(k)) EXPECT_EQ(cd.coreness[v], k);
  }
  EXPECT_EQ(vr.shell_start.back(), n);
}

class VertexRankSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(VertexRankSuite, CorrectOnSuite) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  CheckVertexRank(cd, ComputeVertexRank(cd));
}

TEST_P(VertexRankSuite, IdenticalAcrossThreadCounts) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  VertexRank base = ComputeVertexRank(cd);
  for (int threads : {1, 2, 4, 7}) {
    ThreadCountGuard guard(threads);
    VertexRank vr = ComputeVertexRank(cd);
    EXPECT_EQ(vr.sorted, base.sorted) << "threads=" << threads;
    EXPECT_EQ(vr.rank, base.rank);
    EXPECT_EQ(vr.shell_start, base.shell_start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, VertexRankSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hcd
