#include <gtest/gtest.h>

#include <algorithm>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "hcd/flat_index.h"
#include "hcd/naive_hcd.h"
#include "search/densest.h"
#include "search/max_clique.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

double InducedAverageDegree(const Graph& g, const std::vector<VertexId>& vs) {
  if (vs.empty()) return 0.0;
  return 2.0 * static_cast<double>(CountInducedEdges(g, vs)) /
         static_cast<double>(vs.size());
}

class DensestSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(DensestSuite, ReportedDensityMatchesSubgraph) {
  const Graph& g = GetParam().graph;
  if (g.NumVertices() == 0) return;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));

  DenseSubgraph pbks = PbksDensest(g, cd, flat);
  EXPECT_NEAR(pbks.average_degree, InducedAverageDegree(g, pbks.vertices),
              1e-9);
  DenseSubgraph coreapp = CoreAppDensest(g, cd);
  EXPECT_NEAR(coreapp.average_degree,
              InducedAverageDegree(g, coreapp.vertices), 1e-9);
  DenseSubgraph peel = CharikarPeelingDensest(g);
  EXPECT_NEAR(peel.average_degree, InducedAverageDegree(g, peel.vertices),
              1e-9);
}

TEST_P(DensestSuite, PbksDNeverWorseThanCoreApp) {
  const Graph& g = GetParam().graph;
  if (g.NumEdges() == 0) return;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  DenseSubgraph pbks = PbksDensest(g, cd, flat);
  DenseSubgraph coreapp = CoreAppDensest(g, cd);
  EXPECT_GE(pbks.average_degree, coreapp.average_degree - 1e-9);
}

TEST_P(DensestSuite, HalfApproximationHolds) {
  // rho(PBKS-D) >= k_max >= rho* / 2 >= rho(any other method) / 2.
  const Graph& g = GetParam().graph;
  if (g.NumEdges() == 0) return;
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  DenseSubgraph pbks = PbksDensest(g, cd, flat);
  EXPECT_GE(pbks.average_degree + 1e-9, static_cast<double>(cd.k_max));
  DenseSubgraph peel = CharikarPeelingDensest(g);
  EXPECT_GE(pbks.average_degree + 1e-9, peel.average_degree / 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, DensestSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(GreedyPlusPlus, DensityReportedMatchesSubgraph) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    if (tc.graph.NumEdges() == 0) continue;
    SCOPED_TRACE(tc.name);
    DenseSubgraph gpp = GreedyPlusPlusDensest(tc.graph, 4);
    EXPECT_NEAR(gpp.average_degree, InducedAverageDegree(tc.graph, gpp.vertices),
                1e-9);
  }
}

TEST(GreedyPlusPlus, NeverWorseThanSinglePassPeeling) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(250, 1200, seed);
    DenseSubgraph peel = CharikarPeelingDensest(g);
    DenseSubgraph gpp = GreedyPlusPlusDensest(g, 6);
    EXPECT_GE(gpp.average_degree, peel.average_degree - 1e-9) << seed;
  }
}

TEST(GreedyPlusPlus, ExactOnPlantedCliquePlusNoise) {
  // K12 plus a sparse ring: the densest subgraph is the clique.
  GraphBuilder b;
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) b.AddEdge(u, v);
  }
  for (VertexId v = 12; v < 60; ++v) b.AddEdge(v, v == 59 ? 12 : v + 1);
  b.AddEdge(0, 12);
  Graph g = std::move(b).Build(60);
  DenseSubgraph gpp = GreedyPlusPlusDensest(g, 8);
  EXPECT_DOUBLE_EQ(gpp.average_degree, 11.0);
  EXPECT_EQ(gpp.vertices.size(), 12u);
}

TEST(Densest, PaperExampleFindsS31) {
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  DenseSubgraph pbks = PbksDensest(g, cd, flat);
  EXPECT_EQ(pbks.vertices.size(), 9u);
  EXPECT_NEAR(pbks.average_degree, 40.0 / 9.0, 1e-12);
  // CoreApp returns the 4-core (octahedron), average degree exactly 4.
  DenseSubgraph coreapp = CoreAppDensest(g, cd);
  EXPECT_EQ(coreapp.vertices.size(), 6u);
  EXPECT_NEAR(coreapp.average_degree, 4.0, 1e-12);
}

TEST(MaxClique, KnownCliques) {
  {
    Graph g = CompleteGraph(7);
    CoreDecomposition cd = BzCoreDecomposition(g);
    EXPECT_EQ(MaxClique(g, cd).size(), 7u);
  }
  {
    Graph g = CycleGraph(8);
    CoreDecomposition cd = BzCoreDecomposition(g);
    EXPECT_EQ(MaxClique(g, cd).size(), 2u);
  }
  {
    Graph g = RingOfCliques(4, 6);
    CoreDecomposition cd = BzCoreDecomposition(g);
    std::vector<VertexId> mc = MaxClique(g, cd);
    EXPECT_EQ(mc.size(), 6u);
    EXPECT_TRUE(IsClique(g, mc));
  }
}

TEST(MaxClique, OutputIsAlwaysAClique) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    SCOPED_TRACE(tc.name);
    if (tc.graph.NumVertices() == 0) continue;
    CoreDecomposition cd = BzCoreDecomposition(tc.graph);
    std::vector<VertexId> mc = MaxClique(tc.graph, cd);
    EXPECT_TRUE(IsClique(tc.graph, mc));
    EXPECT_GE(mc.size(), 1u);
  }
}

TEST(MaxClique, MatchesBruteForceOnSmallRandomGraphs) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnp(18, 0.45, seed);
    CoreDecomposition cd = BzCoreDecomposition(g);
    const size_t got = MaxClique(g, cd).size();
    // Brute force over all vertex subsets (n <= 18 but prune by popcount).
    size_t best = 0;
    const VertexId n = g.NumVertices();
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      const size_t size = static_cast<size_t>(__builtin_popcount(mask));
      if (size <= best) continue;
      std::vector<VertexId> subset;
      for (VertexId v = 0; v < n; ++v) {
        if (mask & (1u << v)) subset.push_back(v);
      }
      if (IsClique(g, subset)) best = size;
    }
    EXPECT_EQ(got, best) << "seed=" << seed;
  }
}

TEST(MaxClique, ContainedInDensestCoreOnCliqueHeavyGraphs) {
  // Table IV's "MC ⊆ S*" phenomenon: on a ring of cliques the densest
  // k-core is one clique, which is exactly where the maximum clique lives.
  Graph g = RingOfCliques(6, 7);
  CoreDecomposition cd = BzCoreDecomposition(g);
  const FlatHcdIndex flat = Freeze(NaiveHcdBuild(g, cd));
  DenseSubgraph pbks = PbksDensest(g, cd, flat);
  std::vector<VertexId> mc = MaxClique(g, cd);
  std::vector<VertexId> sorted(pbks.vertices);
  std::sort(sorted.begin(), sorted.end());
  size_t contained = 0;
  for (VertexId v : mc) {
    contained += std::binary_search(sorted.begin(), sorted.end(), v);
  }
  EXPECT_EQ(contained, mc.size());
}

}  // namespace
}  // namespace hcd
