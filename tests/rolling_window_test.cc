// Tests for the rolling-window sample ring behind the server's kStats
// message: histogram sampling/subtraction, the windowed quantile
// estimator's agreement with Histogram::Quantile, and Delta's clamping
// and short-vector semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/rolling_window.h"

namespace hcd {
namespace {

WindowSample MakeSample(double at_seconds, std::vector<uint64_t> counters) {
  WindowSample sample;
  sample.at_seconds = at_seconds;
  sample.counters = std::move(counters);
  return sample;
}

TEST(HistogramSample, SampleCopiesBucketsAndSum) {
  Histogram h;
  h.Observe(0.5e-6);  // bucket 0
  h.Observe(1.5e-6);  // bucket 1
  h.Observe(1e9);     // overflow
  const HistogramSample sample = SampleHistogram(h);
  EXPECT_EQ(sample.buckets[0], 1u);
  EXPECT_EQ(sample.buckets[1], 1u);
  EXPECT_EQ(sample.buckets[Histogram::kNumFiniteBuckets], 1u);
  EXPECT_EQ(sample.TotalCount(), 3u);
  EXPECT_DOUBLE_EQ(sample.sum_seconds, h.Sum());
}

TEST(HistogramSample, SubtractClampsPerBucketAndSum) {
  HistogramSample newer, older;
  newer.buckets[0] = 5;
  newer.buckets[3] = 2;
  newer.sum_seconds = 1.0;
  older.buckets[0] = 3;
  older.buckets[3] = 7;  // older larger: out-of-order reader, clamp to 0
  older.sum_seconds = 4.0;
  const HistogramSample delta = SubtractSample(newer, older);
  EXPECT_EQ(delta.buckets[0], 2u);
  EXPECT_EQ(delta.buckets[3], 0u);
  EXPECT_EQ(delta.sum_seconds, 0.0);
}

TEST(HistogramSample, SampleQuantileMatchesHistogramQuantile) {
  Histogram h;
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    // Spread across many log buckets: 1 us .. ~1 s.
    h.Observe(1e-6 * static_cast<double>(1 + rng.Uniform(1000000)));
  }
  const HistogramSample sample = SampleHistogram(h);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(SampleQuantile(sample, q), h.Quantile(q)) << "q=" << q;
  }
}

TEST(RollingWindow, DeltaNeedsTwoSamples) {
  RollingWindow window(8);
  WindowSample delta;
  EXPECT_FALSE(window.Delta(1, &delta));
  window.Push(MakeSample(1.0, {10}));
  EXPECT_FALSE(window.Delta(1, &delta));
  window.Push(MakeSample(2.0, {25}));
  ASSERT_TRUE(window.Delta(1, &delta));
  EXPECT_DOUBLE_EQ(delta.at_seconds, 1.0);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0], 15u);
}

TEST(RollingWindow, DeltaSpansTheRequestedTicks) {
  RollingWindow window(8);
  for (int tick = 0; tick <= 5; ++tick) {
    window.Push(
        MakeSample(static_cast<double>(tick),
                   {static_cast<uint64_t>(tick) * 100}));
  }
  WindowSample delta;
  ASSERT_TRUE(window.Delta(3, &delta));
  EXPECT_DOUBLE_EQ(delta.at_seconds, 3.0);
  EXPECT_EQ(delta.counters[0], 300u);
  // ticks_back of 0 still compares against at least the previous sample.
  ASSERT_TRUE(window.Delta(0, &delta));
  EXPECT_EQ(delta.counters[0], 100u);
}

TEST(RollingWindow, DeltaClampsToTheOldestRetainedSample) {
  RollingWindow window(4);  // retains at most 4 samples
  for (int tick = 0; tick <= 9; ++tick) {
    window.Push(
        MakeSample(static_cast<double>(tick),
                   {static_cast<uint64_t>(tick) * 10}));
  }
  EXPECT_EQ(window.Size(), 4u);  // ticks 6..9 survive
  WindowSample delta;
  ASSERT_TRUE(window.Delta(60, &delta));
  EXPECT_DOUBLE_EQ(delta.at_seconds, 3.0);  // 9 - 6: the real span reported
  EXPECT_EQ(delta.counters[0], 30u);
}

TEST(RollingWindow, CountersNeverUnderflowOnRegression) {
  RollingWindow window(8);
  window.Push(MakeSample(1.0, {100}));
  window.Push(MakeSample(2.0, {40}));  // regressed (e.g. restarted source)
  WindowSample delta;
  ASSERT_TRUE(window.Delta(1, &delta));
  EXPECT_EQ(delta.counters[0], 0u);  // clamped, not wrapped to ~2^64
}

TEST(RollingWindow, ShorterOlderVectorsReadAsZero) {
  // An instrument added between ticks: the older sample has fewer slots.
  RollingWindow window(8);
  window.Push(MakeSample(1.0, {5}));
  window.Push(MakeSample(2.0, {8, 70}));
  WindowSample delta;
  ASSERT_TRUE(window.Delta(1, &delta));
  ASSERT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(delta.counters[0], 3u);
  EXPECT_EQ(delta.counters[1], 70u);  // counted from zero
}

TEST(RollingWindow, HistogramDeltaIsTheBetweenTicksIncrement) {
  Histogram h;
  RollingWindow window(8);

  h.Observe(0.5e-6);
  WindowSample first;
  first.at_seconds = 1.0;
  first.histograms.push_back(SampleHistogram(h));
  window.Push(std::move(first));

  h.Observe(3e-6);  // bucket 2: the only observation between the ticks
  h.Observe(3e-6);
  WindowSample second;
  second.at_seconds = 2.0;
  second.histograms.push_back(SampleHistogram(h));
  window.Push(std::move(second));

  WindowSample delta;
  ASSERT_TRUE(window.Delta(1, &delta));
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].TotalCount(), 2u);
  EXPECT_EQ(delta.histograms[0].buckets[0], 0u);
  EXPECT_EQ(delta.histograms[0].buckets[2], 2u);
  // The windowed quantile reflects only the in-window observations.
  const double p50 = SampleQuantile(delta.histograms[0], 0.5);
  EXPECT_GT(p50, 2e-6);
  EXPECT_LE(p50, 4e-6);
}

TEST(RollingWindow, MissingOlderHistogramsReadAsZero) {
  RollingWindow window(8);
  WindowSample first;
  first.at_seconds = 1.0;
  window.Push(std::move(first));
  Histogram h;
  h.Observe(2e-6);
  WindowSample second;
  second.at_seconds = 2.0;
  second.histograms.push_back(SampleHistogram(h));
  window.Push(std::move(second));
  WindowSample delta;
  ASSERT_TRUE(window.Delta(1, &delta));
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].TotalCount(), 1u);
}

}  // namespace
}  // namespace hcd
