#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "search/influential.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

/// Independent oracle: recompute the k-constrained subgraph and the
/// component of the global minimum from scratch at every step.
std::vector<InfluentialCommunity> OracleCommunities(
    const Graph& g, const std::vector<double>& weights, uint32_t k) {
  const VertexId n = g.NumVertices();
  std::vector<bool> removed(n, false);
  std::vector<InfluentialCommunity> all;
  while (true) {
    // k-core of the remaining graph by repeated stripping.
    std::vector<bool> alive(n);
    for (VertexId v = 0; v < n; ++v) alive[v] = !removed[v];
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        VertexId d = 0;
        for (VertexId u : g.Neighbors(v)) d += alive[u];
        if (d < k) {
          alive[v] = false;
          changed = true;
        }
      }
    }
    // Global minimum-weight alive vertex (ties by id).
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && (best == kInvalidVertex || weights[v] < weights[best])) {
        best = v;
      }
    }
    if (best == kInvalidVertex) break;
    // Its component.
    InfluentialCommunity c;
    c.influence = weights[best];
    std::vector<VertexId> stack = {best};
    std::vector<bool> seen(n, false);
    seen[best] = true;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      c.vertices.push_back(v);
      for (VertexId u : g.Neighbors(v)) {
        if (alive[u] && !seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
    all.push_back(std::move(c));
    removed[best] = true;
  }
  std::reverse(all.begin(), all.end());
  return all;
}

void ExpectSameCommunities(std::vector<InfluentialCommunity> a,
                           std::vector<InfluentialCommunity> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("community " + std::to_string(i));
    EXPECT_DOUBLE_EQ(a[i].influence, b[i].influence);
    std::sort(a[i].vertices.begin(), a[i].vertices.end());
    std::sort(b[i].vertices.begin(), b[i].vertices.end());
    EXPECT_EQ(a[i].vertices, b[i].vertices);
  }
}

std::vector<double> RandomWeights(VertexId n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.UniformDouble();
  return w;
}

TEST(Influential, HandComputedExample) {
  // Two triangles joined by an edge; weights increasing with id.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 5);
  Graph g = std::move(b).Build(6);
  std::vector<double> w = {1, 2, 3, 4, 5, 6};

  auto top = TopInfluentialCommunities(g, w, 2, 10);
  // Peeling with k=2: min vertex 0 -> whole 2-core (all 6, since vertex 2-3
  // bridge keeps degrees... bridge endpoints have degree 3); removing 0
  // cascades 1, 2 away (degree < 2), leaving triangle {3,4,5}; then 3 -> its
  // triangle; removing it empties.
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].influence, 4.0);  // triangle {3,4,5}
  EXPECT_EQ(top[0].vertices.size(), 3u);
  EXPECT_DOUBLE_EQ(top[1].influence, 1.0);  // the whole 2-core
  EXPECT_EQ(top[1].vertices.size(), 6u);
}

TEST(Influential, MatchesOracleOnSuite) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    if (tc.graph.NumVertices() == 0 || tc.graph.NumVertices() > 400) continue;
    SCOPED_TRACE(tc.name);
    std::vector<double> w = RandomWeights(tc.graph.NumVertices(), 99);
    for (uint32_t k : {1u, 2u, 3u}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      auto oracle = OracleCommunities(tc.graph, w, k);
      auto got = TopInfluentialCommunities(tc.graph, w, k,
                                           static_cast<uint32_t>(oracle.size()));
      ExpectSameCommunities(std::move(got), std::move(oracle));
    }
  }
}

TEST(Influential, TopRIsPrefixOfFullRanking) {
  Graph g = ErdosRenyiGnm(200, 700, 5);
  std::vector<double> w = RandomWeights(200, 7);
  auto all = TopInfluentialCommunities(g, w, 3, 1000000);
  auto top3 = TopInfluentialCommunities(g, w, 3, 3);
  ASSERT_LE(top3.size(), 3u);
  for (size_t i = 0; i < top3.size(); ++i) {
    EXPECT_DOUBLE_EQ(top3[i].influence, all[i].influence);
    EXPECT_EQ(top3[i].vertices.size(), all[i].vertices.size());
  }
}

TEST(Influential, CommunitiesSatisfyDefinition) {
  Graph g = BarabasiAlbertVarying(300, 1, 8, 4);
  std::vector<double> w = RandomWeights(300, 11);
  const uint32_t k = 4;
  auto top = TopInfluentialCommunities(g, w, k, 5);
  double prev = 1e300;
  for (const auto& c : top) {
    EXPECT_LE(c.influence, prev);  // descending influence
    prev = c.influence;
    // Influence is the minimum member weight.
    double min_w = 1e300;
    for (VertexId v : c.vertices) min_w = std::min(min_w, w[v]);
    EXPECT_DOUBLE_EQ(c.influence, min_w);
    // Minimum internal degree >= k and connected.
    InducedSubgraph sub = Induce(g, c.vertices);
    for (VertexId v = 0; v < sub.graph.NumVertices(); ++v) {
      EXPECT_GE(sub.graph.Degree(v), k);
    }
  }
}

TEST(Influential, EmptyWhenKCoreEmpty) {
  Graph g = PathGraph(10);
  std::vector<double> w(10, 1.0);
  EXPECT_TRUE(TopInfluentialCommunities(g, w, 5, 3).empty());
}

}  // namespace
}  // namespace hcd
