#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "parallel/omp_utils.h"
#include "parallel/union_find.h"
#include "parallel/wf_union_find.h"

namespace hcd {
namespace {

TEST(UnionFind, BasicMerge) {
  UnionFind uf(6);
  EXPECT_FALSE(uf.SameSet(0, 1));
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_TRUE(uf.SameSet(0, 1));
  EXPECT_FALSE(uf.SameSet(1, 2));
  uf.Union(1, 3);
  EXPECT_TRUE(uf.SameSet(0, 2));
  EXPECT_FALSE(uf.SameSet(0, 5));
}

TEST(UnionFind, PivotIsMinIdWithoutRank) {
  UnionFind uf(10);
  uf.Union(7, 4);
  EXPECT_EQ(uf.GetPivot(7), 4u);
  uf.Union(4, 9);
  EXPECT_EQ(uf.GetPivot(9), 4u);
  uf.Union(2, 9);
  EXPECT_EQ(uf.GetPivot(7), 2u);
}

TEST(UnionFind, PivotFollowsVertexRank) {
  // rank[v] reverses the id order: highest id = lowest rank.
  std::vector<VertexId> rank = {5, 4, 3, 2, 1, 0};
  UnionFind uf(6, rank.data());
  uf.Union(0, 1);
  EXPECT_EQ(uf.GetPivot(0), 1u);
  uf.Union(1, 5);
  EXPECT_EQ(uf.GetPivot(0), 5u);
}

TEST(UnionFind, UnionIsIdempotent) {
  UnionFind uf(4);
  uf.Union(0, 1);
  uf.Union(0, 1);
  uf.Union(1, 0);
  EXPECT_TRUE(uf.SameSet(0, 1));
  EXPECT_EQ(uf.GetPivot(1), 0u);
}

TEST(WaitFreeUnionFind, MatchesSequentialOnRandomWorkload) {
  const VertexId n = 500;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    std::vector<VertexId> rank(n);
    std::iota(rank.begin(), rank.end(), 0);
    // Random rank permutation (Fisher-Yates).
    for (VertexId i = n; i > 1; --i) {
      std::swap(rank[i - 1], rank[rng.Uniform(i)]);
    }
    UnionFind seq(n, rank.data());
    WaitFreeUnionFind wf(n, rank.data());
    for (int op = 0; op < 2000; ++op) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      seq.Union(u, v);
      wf.Union(u, v);
    }
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(seq.GetPivot(v), wf.GetPivot(v)) << "vertex " << v;
      EXPECT_EQ(seq.SameSet(v, (v + 1) % n), wf.SameSet(v, (v + 1) % n));
    }
  }
}

TEST(WaitFreeUnionFind, ConcurrentUnionsProduceExactComponentsAndPivots) {
  const VertexId n = 20000;
  // Union pairs forming 100 chains of 200 elements each; pivot of chain c
  // must be its smallest element c*200.
  std::vector<std::pair<VertexId, VertexId>> ops;
  for (VertexId c = 0; c < 100; ++c) {
    for (VertexId i = 0; i + 1 < 200; ++i) {
      ops.emplace_back(c * 200 + i, c * 200 + i + 1);
    }
  }
  for (int trial = 0; trial < 3; ++trial) {
    WaitFreeUnionFind wf(n);
#pragma omp parallel for schedule(dynamic, 16)
    for (int64_t i = 0; i < static_cast<int64_t>(ops.size()); ++i) {
      wf.Union(ops[i].first, ops[i].second);
    }
    for (VertexId c = 0; c < 100; ++c) {
      for (VertexId i = 0; i < 200; ++i) {
        EXPECT_EQ(wf.GetPivot(c * 200 + i), c * 200);
      }
      if (c + 1 < 100) {
        EXPECT_FALSE(wf.SameSet(c * 200, (c + 1) * 200));
      }
    }
  }
}

TEST(WaitFreeUnionFind, SingletonPivots) {
  WaitFreeUnionFind wf(5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(wf.Find(v), v);
    EXPECT_EQ(wf.GetPivot(v), v);
  }
}

}  // namespace
}  // namespace hcd
