#ifndef HCD_TESTS_TEST_UTIL_H_
#define HCD_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace hcd::testing {

/// Minimal strict JSON value + recursive-descent parser, enough to
/// round-trip the JSON the library emits (telemetry reports, Chrome traces,
/// metrics dumps) without an external dependency. Numbers are doubles;
/// objects preserve insertion order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with this key, or null when absent (objects only).
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace internal {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return true;
      if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control
      if (ch != '\\') {
        *out += ch;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          // The library only emits \u00xx (control characters); decode the
          // single-byte range and reject what we never produce.
          if (code > 0x7f) return false;
          *out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char ch = text_[pos_];
    if (ch == 'n') {
      out->type = JsonValue::Type::kNull;
      return Literal("null");
    }
    if (ch == 't' || ch == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = ch == 't';
      return Literal(ch == 't' ? "true" : "false");
    }
    if (ch == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (ch == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!ParseValue(&item)) return false;
        out->array.push_back(std::move(item));
        SkipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (ch == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    // Number: delegate validation of the tail to strtod, but check the
    // leading character so "inf"/"nan" are rejected.
    if (ch != '-' && (ch < '0' || ch > '9')) return false;
    out->type = JsonValue::Type::kNumber;
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace internal

/// Parses `text` as one strict JSON document; false on any syntax error or
/// trailing content.
inline bool ParseJson(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  return internal::JsonParser(text).Parse(out);
}

/// A named generated graph for parameterized sweeps.
struct GraphCase {
  std::string name;
  Graph graph;
};

/// A diverse set of small-to-medium graphs exercising all structural
/// regimes: degenerate shapes, random (uniform + skewed), and planted
/// hierarchies with known HCDs.
inline std::vector<GraphCase> StandardGraphSuite() {
  std::vector<GraphCase> cases;
  cases.push_back({"empty", Graph()});
  {
    GraphBuilder b;
    cases.push_back({"isolated_only", std::move(b).Build(5)});
  }
  cases.push_back({"single_edge", PathGraph(2)});
  cases.push_back({"path16", PathGraph(16)});
  cases.push_back({"cycle9", CycleGraph(9)});
  cases.push_back({"star12", StarGraph(12)});
  cases.push_back({"k6", CompleteGraph(6)});
  cases.push_back({"paper_fig1", PaperFigure1Graph()});
  cases.push_back({"ring_of_cliques", RingOfCliques(5, 6)});
  cases.push_back({"gnm_sparse", ErdosRenyiGnm(300, 500, 1)});
  cases.push_back({"gnm_dense", ErdosRenyiGnm(120, 2500, 2)});
  cases.push_back({"gnp", ErdosRenyiGnp(90, 0.12, 3)});
  cases.push_back({"ba", BarabasiAlbert(400, 4, 4)});
  cases.push_back({"rmat", RMatGraph500(9, 3000, 5)});
  cases.push_back({"onion", PlantedHierarchy(OnionSpec(7, 10), 6)});
  cases.push_back(
      {"branching", PlantedHierarchy(BranchingSpec(2, 10, 2, 2, 6), 7)});
  cases.push_back({"forest2", PlantedForest({OnionSpec(4, 6), OnionSpec(6, 5)},
                                            8)});
  // Disconnected mixture with isolated vertices: K5 + path + 3 isolated.
  {
    GraphBuilder b;
    for (VertexId u = 0; u < 5; ++u) {
      for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
    }
    for (VertexId v = 5; v < 9; ++v) b.AddEdge(v, v + 1);
    cases.push_back({"mixture", std::move(b).Build(13)});
  }
  return cases;
}

/// Seeds for randomized property sweeps.
inline std::vector<uint64_t> SweepSeeds() { return {11, 22, 33, 44, 55}; }

}  // namespace hcd::testing

#endif  // HCD_TESTS_TEST_UTIL_H_
