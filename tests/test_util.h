#ifndef HCD_TESTS_TEST_UTIL_H_
#define HCD_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace hcd::testing {

/// A named generated graph for parameterized sweeps.
struct GraphCase {
  std::string name;
  Graph graph;
};

/// A diverse set of small-to-medium graphs exercising all structural
/// regimes: degenerate shapes, random (uniform + skewed), and planted
/// hierarchies with known HCDs.
inline std::vector<GraphCase> StandardGraphSuite() {
  std::vector<GraphCase> cases;
  cases.push_back({"empty", Graph()});
  {
    GraphBuilder b;
    cases.push_back({"isolated_only", std::move(b).Build(5)});
  }
  cases.push_back({"single_edge", PathGraph(2)});
  cases.push_back({"path16", PathGraph(16)});
  cases.push_back({"cycle9", CycleGraph(9)});
  cases.push_back({"star12", StarGraph(12)});
  cases.push_back({"k6", CompleteGraph(6)});
  cases.push_back({"paper_fig1", PaperFigure1Graph()});
  cases.push_back({"ring_of_cliques", RingOfCliques(5, 6)});
  cases.push_back({"gnm_sparse", ErdosRenyiGnm(300, 500, 1)});
  cases.push_back({"gnm_dense", ErdosRenyiGnm(120, 2500, 2)});
  cases.push_back({"gnp", ErdosRenyiGnp(90, 0.12, 3)});
  cases.push_back({"ba", BarabasiAlbert(400, 4, 4)});
  cases.push_back({"rmat", RMatGraph500(9, 3000, 5)});
  cases.push_back({"onion", PlantedHierarchy(OnionSpec(7, 10), 6)});
  cases.push_back(
      {"branching", PlantedHierarchy(BranchingSpec(2, 10, 2, 2, 6), 7)});
  cases.push_back({"forest2", PlantedForest({OnionSpec(4, 6), OnionSpec(6, 5)},
                                            8)});
  // Disconnected mixture with isolated vertices: K5 + path + 3 isolated.
  {
    GraphBuilder b;
    for (VertexId u = 0; u < 5; ++u) {
      for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
    }
    for (VertexId v = 5; v < 9; ++v) b.AddEdge(v, v + 1);
    cases.push_back({"mixture", std::move(b).Build(13)});
  }
  return cases;
}

/// Seeds for randomized property sweeps.
inline std::vector<uint64_t> SweepSeeds() { return {11, 22, 33, 44, 55}; }

}  // namespace hcd::testing

#endif  // HCD_TESTS_TEST_UTIL_H_
